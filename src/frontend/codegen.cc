#include "frontend/codegen.h"

#include <map>
#include <unordered_map>

#include "frontend/parser.h"
#include "ir/builder.h"
#include "support/diag.h"

namespace ipds {

namespace {

/** A typed value: the vreg holding it plus its surface type. */
struct Value
{
    Vreg reg = kNoVreg;
    MiniTy ty = MiniTy::Int;
};

/** What a name refers to inside a function. */
struct VarInfo
{
    ObjectId obj = kNoObject;
    MiniTy ty = MiniTy::Int; ///< element type for arrays
    bool isArray = false;
};

/** Width of a scalar of type @p ty when stored in memory. */
MemSize
memSizeOf(MiniTy ty)
{
    return ty == MiniTy::Char ? MemSize::I8 : MemSize::I64;
}

class CodeGen
{
  public:
    explicit CodeGen(const Program &prog, const std::string &mod_name)
        : prog(prog)
    {
        mod.name = mod_name;
    }

    Module
    run()
    {
        declareGlobals();
        declareFunctions();
        for (const auto &fd : prog.functions)
            genFunction(fd);
        FuncId mainId = mod.findFunction("main");
        if (mainId == kNoFunc)
            fatal("program has no 'main' function");
        mod.entry = mainId;
        return std::move(mod);
    }

  private:
    // ---- program-level tables ---------------------------------------

    void
    declareGlobals()
    {
        for (const auto &g : prog.globals) {
            if (globals.count(g.name))
                fatal("line %u: duplicate global '%s'",
                      g.line, g.name.c_str());
            MemObject obj;
            obj.name = g.name;
            obj.kind = ObjectKind::Global;
            VarInfo info;
            info.ty = g.ty;
            if (g.arrayLen > 0) {
                info.isArray = true;
                obj.isArray = true;
                obj.elem = memSizeOf(g.ty);
                obj.size = g.arrayLen *
                    static_cast<uint32_t>(obj.elem);
            } else {
                obj.size = static_cast<uint32_t>(memSizeOf(g.ty));
            }
            if (g.hasInit) {
                if (!g.initStr.empty() || (g.arrayLen && g.ty ==
                                           MiniTy::Char)) {
                    obj.init.assign(g.initStr.begin(), g.initStr.end());
                    obj.init.push_back(0);
                    if (obj.init.size() > obj.size)
                        fatal("line %u: initializer longer than '%s'",
                              g.line, g.name.c_str());
                } else {
                    uint64_t v = static_cast<uint64_t>(g.initInt);
                    for (uint32_t i = 0; i < obj.size && i < 8; i++)
                        obj.init.push_back(
                            static_cast<uint8_t>(v >> (8 * i)));
                }
            }
            info.obj = mod.addObject(std::move(obj));
            globals.emplace(g.name, info);
        }
    }

    void
    declareFunctions()
    {
        for (const auto &fd : prog.functions) {
            if (funcIds.count(fd.name))
                fatal("line %u: duplicate function '%s'",
                      fd.line, fd.name.c_str());
            if (builtinByName(fd.name) != Builtin::None)
                fatal("line %u: '%s' shadows a builtin",
                      fd.line, fd.name.c_str());
            FuncId id = static_cast<FuncId>(funcIds.size());
            funcIds.emplace(fd.name, id);
        }
    }

    /** Intern a string literal as a NUL-terminated const object. */
    ObjectId
    internString(const std::string &bytes)
    {
        auto it = stringPool.find(bytes);
        if (it != stringPool.end())
            return it->second;
        MemObject obj;
        obj.name = strprintf("$str%zu", stringPool.size());
        obj.kind = ObjectKind::Const;
        obj.isArray = true;
        obj.elem = MemSize::I8;
        obj.init.assign(bytes.begin(), bytes.end());
        obj.init.push_back(0);
        obj.size = static_cast<uint32_t>(obj.init.size());
        ObjectId oid = mod.addObject(std::move(obj));
        stringPool.emplace(bytes, oid);
        return oid;
    }

    // ---- function-level state ---------------------------------------

    struct LoopCtx
    {
        BlockId continueTo;
        BlockId breakTo;
    };

    void
    genFunction(const FuncDecl &fd)
    {
        bool retsValue = fd.retTy != MiniTy::Void;
        fb = std::make_unique<FuncBuilder>(
            mod, fd.name, static_cast<uint32_t>(fd.params.size()),
            retsValue);
        if (fb->funcId() != funcIds.at(fd.name))
            panic("function id mismatch for %s", fd.name.c_str());

        locals.clear();
        loops.clear();
        curRetTy = fd.retTy;
        tempCount = 0;

        // Spill parameters to memory slots so they are attackable and
        // analyzable memory-resident variables.
        for (size_t i = 0; i < fd.params.size(); i++) {
            const auto &p = fd.params[i];
            if (locals.count(p.name))
                fatal("line %u: duplicate parameter '%s'",
                      fd.line, p.name.c_str());
            VarInfo info;
            info.ty = p.ty;
            info.obj = fb->addLocal(
                p.name, static_cast<uint32_t>(memSizeOf(p.ty)));
            locals.emplace(p.name, info);
            Vreg v = fb->getArg(static_cast<uint32_t>(i));
            fb->store(info.obj, v, 0, memSizeOf(p.ty));
        }

        genStmt(*fd.body);

        if (!fb->blockTerminated()) {
            if (retsValue)
                fb->ret(fb->constInt(0));
            else
                fb->ret();
        }
        fb->finish();
        fb.reset();
    }

    VarInfo
    lookupVar(const std::string &name, uint32_t line)
    {
        auto it = locals.find(name);
        if (it != locals.end())
            return it->second;
        auto git = globals.find(name);
        if (git != globals.end())
            return git->second;
        fatal("line %u: undeclared variable '%s'", line, name.c_str());
    }

    // ---- statements --------------------------------------------------

    void
    genStmt(const Stmt &s)
    {
        fb->setLine(s.line);
        switch (s.kind) {
          case StmtKind::Block:
            for (const auto &child : s.body)
                genStmt(*child);
            break;
          case StmtKind::Decl:
            genDecl(s);
            break;
          case StmtKind::Assign:
            genAssign(s);
            break;
          case StmtKind::If:
            genIf(s);
            break;
          case StmtKind::While:
            genWhile(s);
            break;
          case StmtKind::For:
            genFor(s);
            break;
          case StmtKind::Return:
            genReturn(s);
            break;
          case StmtKind::ExprStmt:
            genExpr(*s.expr);
            break;
          case StmtKind::Break: {
            if (loops.empty())
                fatal("line %u: break outside a loop", s.line);
            fb->jmp(loops.back().breakTo);
            startDeadBlock();
            break;
          }
          case StmtKind::Continue: {
            if (loops.empty())
                fatal("line %u: continue outside a loop", s.line);
            fb->jmp(loops.back().continueTo);
            startDeadBlock();
            break;
          }
        }
    }

    /** After an explicit terminator, park codegen in a fresh block. */
    void
    startDeadBlock()
    {
        BlockId dead = fb->newBlock("dead");
        fb->setBlock(dead);
    }

    void
    genDecl(const Stmt &s)
    {
        if (locals.count(s.declName))
            fatal("line %u: duplicate local '%s'",
                  s.line, s.declName.c_str());
        VarInfo info;
        info.ty = s.declTy;
        if (s.arrayLen > 0) {
            info.isArray = true;
            MemSize elem = memSizeOf(s.declTy);
            info.obj = fb->addArray(
                s.declName,
                s.arrayLen * static_cast<uint32_t>(elem), elem);
        } else {
            info.obj = fb->addLocal(
                s.declName, static_cast<uint32_t>(memSizeOf(s.declTy)));
        }
        locals.emplace(s.declName, info);
    }

    void
    genAssign(const Stmt &s)
    {
        const Expr &t = *s.target;
        Value v = genExpr(*s.value);
        switch (t.kind) {
          case ExprKind::Var: {
            VarInfo info = lookupVar(t.name, t.line);
            if (info.isArray)
                fatal("line %u: cannot assign to array '%s'",
                      t.line, t.name.c_str());
            fb->store(info.obj, v.reg, 0, memSizeOf(info.ty));
            break;
          }
          case ExprKind::Index: {
            auto [addr, elem, direct] = genIndexAddr(t);
            if (direct.first) {
                fb->store(direct.second.obj, v.reg, direct.second.off,
                          elem);
            } else {
                fb->storeInd(addr, v.reg, elem);
            }
            break;
          }
          case ExprKind::Deref: {
            Value p = genExpr(*t.lhs);
            if (!isPtr(p.ty))
                fatal("line %u: dereference of non-pointer", t.line);
            MemSize elem =
                p.ty == MiniTy::PtrChar ? MemSize::I8 : MemSize::I64;
            fb->storeInd(p.reg, v.reg, elem);
            break;
          }
          default:
            fatal("line %u: invalid assignment target", t.line);
        }
    }

    void
    genIf(const Stmt &s)
    {
        BlockId thenB = fb->newBlock("then");
        BlockId elseB = s.elseBody ? fb->newBlock("else") : kNoBlock;
        BlockId done = fb->newBlock("endif");
        genCondBr(*s.cond, thenB, s.elseBody ? elseB : done);
        fb->setBlock(thenB);
        genStmt(*s.thenBody);
        if (!fb->blockTerminated())
            fb->jmp(done);
        if (s.elseBody) {
            fb->setBlock(elseB);
            genStmt(*s.elseBody);
            if (!fb->blockTerminated())
                fb->jmp(done);
        }
        fb->setBlock(done);
    }

    void
    genWhile(const Stmt &s)
    {
        BlockId head = fb->newBlock("while.head");
        BlockId body = fb->newBlock("while.body");
        BlockId done = fb->newBlock("while.done");
        fb->jmp(head);
        fb->setBlock(head);
        genCondBr(*s.cond, body, done);
        fb->setBlock(body);
        loops.push_back({head, done});
        genStmt(*s.thenBody);
        loops.pop_back();
        if (!fb->blockTerminated())
            fb->jmp(head);
        fb->setBlock(done);
    }

    void
    genFor(const Stmt &s)
    {
        if (s.init)
            genStmt(*s.init);
        BlockId head = fb->newBlock("for.head");
        BlockId body = fb->newBlock("for.body");
        BlockId stepB = fb->newBlock("for.step");
        BlockId done = fb->newBlock("for.done");
        fb->jmp(head);
        fb->setBlock(head);
        if (s.cond)
            genCondBr(*s.cond, body, done);
        else
            fb->jmp(body);
        fb->setBlock(body);
        loops.push_back({stepB, done});
        genStmt(*s.thenBody);
        loops.pop_back();
        if (!fb->blockTerminated())
            fb->jmp(stepB);
        fb->setBlock(stepB);
        if (s.step)
            genStmt(*s.step);
        fb->jmp(head);
        fb->setBlock(done);
    }

    void
    genReturn(const Stmt &s)
    {
        if (curRetTy == MiniTy::Void) {
            if (s.expr)
                fatal("line %u: returning a value from void function",
                      s.line);
            fb->ret();
        } else {
            if (!s.expr)
                fatal("line %u: missing return value", s.line);
            Value v = genExpr(*s.expr);
            fb->ret(v.reg);
        }
        startDeadBlock();
    }

    // ---- conditions ---------------------------------------------------

    /**
     * Emit control flow for a condition: jump to @p t_blk if @p e is
     * true, @p f_blk otherwise. Logical operators become CFG structure;
     * comparisons feed Br directly.
     */
    void
    genCondBr(const Expr &e, BlockId t_blk, BlockId f_blk)
    {
        if (e.kind == ExprKind::Binary && e.binOp == BinKind::LogAnd) {
            BlockId mid = fb->newBlock("and.rhs");
            genCondBr(*e.lhs, mid, f_blk);
            fb->setBlock(mid);
            genCondBr(*e.rhs, t_blk, f_blk);
            return;
        }
        if (e.kind == ExprKind::Binary && e.binOp == BinKind::LogOr) {
            BlockId mid = fb->newBlock("or.rhs");
            genCondBr(*e.lhs, t_blk, mid);
            fb->setBlock(mid);
            genCondBr(*e.rhs, t_blk, f_blk);
            return;
        }
        if (e.kind == ExprKind::Unary && e.unOp == UnOp::Not) {
            genCondBr(*e.lhs, f_blk, t_blk);
            return;
        }
        if (e.kind == ExprKind::Binary && isComparison(e.binOp)) {
            Value a = genExpr(*e.lhs);
            Value b = genExpr(*e.rhs);
            Vreg c = fb->cmp(predFor(e.binOp), a.reg, b.reg);
            fb->br(c, t_blk, f_blk);
            return;
        }
        // Fallback: value != 0.
        Value v = genExpr(e);
        Vreg zero = fb->constInt(0);
        Vreg c = fb->cmp(Pred::NE, v.reg, zero);
        fb->br(c, t_blk, f_blk);
    }

    static bool
    isComparison(BinKind k)
    {
        switch (k) {
          case BinKind::Eq: case BinKind::Ne: case BinKind::Lt:
          case BinKind::Le: case BinKind::Gt: case BinKind::Ge:
            return true;
          default:
            return false;
        }
    }

    static Pred
    predFor(BinKind k)
    {
        switch (k) {
          case BinKind::Eq: return Pred::EQ;
          case BinKind::Ne: return Pred::NE;
          case BinKind::Lt: return Pred::LT;
          case BinKind::Le: return Pred::LE;
          case BinKind::Gt: return Pred::GT;
          case BinKind::Ge: return Pred::GE;
          default: panic("predFor: not a comparison");
        }
    }

    // ---- expressions ---------------------------------------------------

    /** Direct-access description for constant-index array accesses. */
    struct DirectAccess
    {
        ObjectId obj = kNoObject;
        int64_t off = 0;
    };

    /**
     * Compute the address of base[index]. Returns the address vreg, the
     * element width, and — when the index is a compile-time constant
     * into a named array — a direct (object, offset) description so the
     * caller can emit a uniquely-aliased access instead.
     */
    std::tuple<Vreg, MemSize, std::pair<bool, DirectAccess>>
    genIndexAddr(const Expr &e)
    {
        const Expr &base = *e.lhs;
        // Constant index into a named array => direct access.
        if (base.kind == ExprKind::Var &&
            e.rhs->kind == ExprKind::IntLit) {
            VarInfo info = lookupVar(base.name, base.line);
            if (info.isArray) {
                MemSize elem = memSizeOf(info.ty);
                int64_t off = e.rhs->intValue *
                    static_cast<int64_t>(elem);
                const MemObject &obj = mod.objects[info.obj];
                if (off < 0 ||
                    off + static_cast<int64_t>(elem) >
                        static_cast<int64_t>(obj.size)) {
                    fatal("line %u: constant index out of bounds for "
                          "'%s'", e.line, base.name.c_str());
                }
                DirectAccess da{info.obj, off};
                return {kNoVreg, elem, {true, da}};
            }
        }
        Value b = genExpr(base);
        if (!isPtr(b.ty))
            fatal("line %u: subscript of non-array/pointer", e.line);
        MemSize elem =
            b.ty == MiniTy::PtrChar ? MemSize::I8 : MemSize::I64;
        Value idx = genExpr(*e.rhs);
        Vreg scaled = idx.reg;
        if (elem == MemSize::I64) {
            Vreg eight = fb->constInt(8);
            scaled = fb->bin(BinOp::Mul, idx.reg, eight);
        }
        Vreg addr = fb->bin(BinOp::Add, b.reg, scaled);
        return {addr, elem, {false, {}}};
    }

    Value
    genExpr(const Expr &e)
    {
        fb->setLine(e.line);
        switch (e.kind) {
          case ExprKind::IntLit:
            return {fb->constInt(e.intValue), MiniTy::Int};
          case ExprKind::StrLit: {
            ObjectId oid = internString(e.strValue);
            return {fb->addrOf(oid), MiniTy::PtrChar};
          }
          case ExprKind::Var: {
            VarInfo info = lookupVar(e.name, e.line);
            if (info.isArray) {
                // Array decays to a pointer to its first element.
                MiniTy pty = info.ty == MiniTy::Char ? MiniTy::PtrChar
                                                     : MiniTy::PtrInt;
                return {fb->addrOf(info.obj), pty};
            }
            Vreg v = fb->load(info.obj, 0, memSizeOf(info.ty));
            return {v, info.ty};
          }
          case ExprKind::Index: {
            auto [addr, elem, direct] = genIndexAddr(e);
            MiniTy ty = elem == MemSize::I8 ? MiniTy::Char : MiniTy::Int;
            if (direct.first) {
                Vreg v = fb->load(direct.second.obj, direct.second.off,
                                  elem);
                return {v, ty};
            }
            return {fb->loadInd(addr, elem), ty};
          }
          case ExprKind::Deref: {
            Value p = genExpr(*e.lhs);
            if (!isPtr(p.ty))
                fatal("line %u: dereference of non-pointer", e.line);
            MemSize elem =
                p.ty == MiniTy::PtrChar ? MemSize::I8 : MemSize::I64;
            MiniTy ty = elem == MemSize::I8 ? MiniTy::Char : MiniTy::Int;
            return {fb->loadInd(p.reg, elem), ty};
          }
          case ExprKind::AddrOf: {
            VarInfo info = lookupVar(e.name, e.line);
            MiniTy pty = info.ty == MiniTy::Char ? MiniTy::PtrChar
                                                 : MiniTy::PtrInt;
            return {fb->addrOf(info.obj), pty};
          }
          case ExprKind::Unary: {
            if (e.unOp == UnOp::Neg) {
                Value v = genExpr(*e.lhs);
                Vreg zero = fb->constInt(0);
                return {fb->bin(BinOp::Sub, zero, v.reg), MiniTy::Int};
            }
            // !e as a value: (e == 0)
            Value v = genExpr(*e.lhs);
            Vreg zero = fb->constInt(0);
            return {fb->cmp(Pred::EQ, v.reg, zero), MiniTy::Int};
          }
          case ExprKind::Binary:
            return genBinary(e);
          case ExprKind::Call:
            return genCall(e);
        }
        panic("genExpr: unhandled expression kind");
    }

    Value
    genBinary(const Expr &e)
    {
        if (e.binOp == BinKind::LogAnd || e.binOp == BinKind::LogOr)
            return genLogicalValue(e);
        if (isComparison(e.binOp)) {
            Value a = genExpr(*e.lhs);
            Value b = genExpr(*e.rhs);
            return {fb->cmp(predFor(e.binOp), a.reg, b.reg),
                    MiniTy::Int};
        }
        Value a = genExpr(*e.lhs);
        Value b = genExpr(*e.rhs);
        // Pointer arithmetic: scale the integer side by pointee size.
        if ((e.binOp == BinKind::Add || e.binOp == BinKind::Sub) &&
            (isPtr(a.ty) || isPtr(b.ty))) {
            Value ptr = isPtr(a.ty) ? a : b;
            Value off = isPtr(a.ty) ? b : a;
            if (isPtr(a.ty) && isPtr(b.ty))
                fatal("line %u: pointer +/- pointer not supported",
                      e.line);
            if (!isPtr(a.ty) && e.binOp == BinKind::Sub)
                fatal("line %u: int - pointer is invalid", e.line);
            Vreg scaled = off.reg;
            if (pointeeSize(ptr.ty) == 8) {
                Vreg eight = fb->constInt(8);
                scaled = fb->bin(BinOp::Mul, off.reg, eight);
            }
            BinOp op =
                e.binOp == BinKind::Add ? BinOp::Add : BinOp::Sub;
            return {fb->bin(op, ptr.reg, scaled), ptr.ty};
        }
        BinOp op;
        switch (e.binOp) {
          case BinKind::Add: op = BinOp::Add; break;
          case BinKind::Sub: op = BinOp::Sub; break;
          case BinKind::Mul: op = BinOp::Mul; break;
          case BinKind::Div: op = BinOp::Div; break;
          case BinKind::Rem: op = BinOp::Rem; break;
          case BinKind::BitAnd: op = BinOp::And; break;
          case BinKind::BitOr: op = BinOp::Or; break;
          case BinKind::BitXor: op = BinOp::Xor; break;
          case BinKind::Shl: op = BinOp::Shl; break;
          case BinKind::Shr: op = BinOp::Shr; break;
          default: panic("genBinary: unexpected operator");
        }
        return {fb->bin(op, a.reg, b.reg), MiniTy::Int};
    }

    /** `a && b` / `a || b` used as a value: lower via a temp slot. */
    Value
    genLogicalValue(const Expr &e)
    {
        ObjectId tmp = fb->addLocal(strprintf("$sc%u", tempCount++), 8);
        BlockId tBlk = fb->newBlock("sc.true");
        BlockId fBlk = fb->newBlock("sc.false");
        BlockId done = fb->newBlock("sc.done");
        genCondBr(e, tBlk, fBlk);
        fb->setBlock(tBlk);
        fb->store(tmp, fb->constInt(1));
        fb->jmp(done);
        fb->setBlock(fBlk);
        fb->store(tmp, fb->constInt(0));
        fb->jmp(done);
        fb->setBlock(done);
        return {fb->load(tmp), MiniTy::Int};
    }

    Value
    genCall(const Expr &e)
    {
        std::vector<Vreg> args;
        args.reserve(e.args.size());
        for (const auto &a : e.args)
            args.push_back(genExpr(*a).reg);

        Builtin b = builtinByName(e.name);
        if (b != Builtin::None) {
            const auto &fx = builtinEffects(b);
            if (args.size() != fx.numParams)
                fatal("line %u: %s expects %u args, got %zu",
                      e.line, e.name.c_str(), fx.numParams,
                      args.size());
            Vreg dst = fb->callBuiltin(b, std::move(args));
            return {dst, MiniTy::Int};
        }

        auto it = funcIds.find(e.name);
        if (it == funcIds.end())
            fatal("line %u: call to undeclared function '%s'",
                  e.line, e.name.c_str());
        const FuncDecl &decl = prog.functions[it->second];
        if (args.size() != decl.params.size())
            fatal("line %u: %s expects %zu args, got %zu",
                  e.line, e.name.c_str(), decl.params.size(),
                  args.size());
        bool wantsValue = decl.retTy != MiniTy::Void;
        Vreg dst = fb->call(it->second, std::move(args), wantsValue);
        return {dst, wantsValue ? MiniTy::Int : MiniTy::Void};
    }

    const Program &prog;
    Module mod;
    std::unique_ptr<FuncBuilder> fb;

    std::unordered_map<std::string, VarInfo> globals;
    std::unordered_map<std::string, VarInfo> locals;
    std::unordered_map<std::string, FuncId> funcIds;
    std::map<std::string, ObjectId> stringPool;
    std::vector<LoopCtx> loops;
    MiniTy curRetTy = MiniTy::Void;
    uint32_t tempCount = 0;
};

} // namespace

Module
compileProgram(const Program &prog, const std::string &mod_name)
{
    return CodeGen(prog, mod_name).run();
}

Module
compileMiniC(const std::string &src, const std::string &mod_name)
{
    Program prog = parseProgram(src);
    Module mod = compileProgram(prog, mod_name);
    mod.assignAddresses();
    mod.verify();
    return mod;
}

} // namespace ipds
