#ifndef IPDS_FRONTEND_AST_H
#define IPDS_FRONTEND_AST_H

/**
 * @file
 * Abstract syntax tree for MiniC. Nodes are owned via unique_ptr; the
 * parser produces a Program which the code generator lowers to IR.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ipds {

/** Surface types. Arrays are a property of declarations, not of Type. */
enum class MiniTy : uint8_t
{
    Int,     ///< 64-bit signed integer
    Char,    ///< 8-bit unsigned byte
    PtrInt,  ///< pointer to int
    PtrChar, ///< pointer to char
    Void,    ///< function return only
};

/** True for the two pointer types. */
inline bool
isPtr(MiniTy t)
{
    return t == MiniTy::PtrInt || t == MiniTy::PtrChar;
}

/** Size in bytes of the pointee of a pointer type. */
inline uint32_t
pointeeSize(MiniTy t)
{
    return t == MiniTy::PtrChar ? 1u : 8u;
}

// --------------------------------------------------------------------
// Expressions
// --------------------------------------------------------------------

enum class ExprKind : uint8_t
{
    IntLit,   ///< integer / char literal
    StrLit,   ///< string literal (decays to const char*)
    Var,      ///< identifier reference
    Index,    ///< base[index]
    Deref,    ///< *ptr
    AddrOf,   ///< &var
    Unary,    ///< -e, !e
    Binary,   ///< e1 op e2 (arith, compare, logical)
    Call,     ///< f(args...)
};

enum class UnOp : uint8_t { Neg, Not };

enum class BinKind : uint8_t
{
    Add, Sub, Mul, Div, Rem, BitAnd, BitOr, BitXor, Shl, Shr,
    Eq, Ne, Lt, Le, Gt, Ge, LogAnd, LogOr,
};

struct Expr
{
    ExprKind kind;
    uint32_t line = 0;

    int64_t intValue = 0;            ///< IntLit
    std::string strValue;            ///< StrLit bytes (no NUL)
    std::string name;                ///< Var / Call callee / AddrOf target
    UnOp unOp = UnOp::Neg;           ///< Unary
    BinKind binOp = BinKind::Add;    ///< Binary
    std::unique_ptr<Expr> lhs;       ///< Binary lhs / Index base /
                                     ///< Deref operand / Unary operand
    std::unique_ptr<Expr> rhs;       ///< Binary rhs / Index subscript
    std::vector<std::unique_ptr<Expr>> args; ///< Call arguments
};

using ExprPtr = std::unique_ptr<Expr>;

// --------------------------------------------------------------------
// Statements
// --------------------------------------------------------------------

enum class StmtKind : uint8_t
{
    Decl,     ///< local variable declaration
    Assign,   ///< lvalue = expr
    If,       ///< if/else
    While,    ///< while loop
    For,      ///< for loop (desugared while)
    Return,   ///< return [expr]
    ExprStmt, ///< expression (call) for side effects
    Block,    ///< { ... }
    Break,
    Continue,
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt
{
    StmtKind kind;
    uint32_t line = 0;

    // Decl
    MiniTy declTy = MiniTy::Int;
    std::string declName;
    uint32_t arrayLen = 0; ///< 0 => scalar

    // Assign: target (Var/Index/Deref) = value
    ExprPtr target;
    ExprPtr value;

    // If/While/For: cond; For also init/step statements
    ExprPtr cond;
    StmtPtr init;
    StmtPtr step;
    StmtPtr thenBody;
    StmtPtr elseBody;

    // Return / ExprStmt
    ExprPtr expr;

    // Block
    std::vector<StmtPtr> body;
};

// --------------------------------------------------------------------
// Declarations
// --------------------------------------------------------------------

struct ParamDecl
{
    MiniTy ty = MiniTy::Int;
    std::string name;
};

struct FuncDecl
{
    std::string name;
    MiniTy retTy = MiniTy::Void;
    std::vector<ParamDecl> params;
    StmtPtr body;
    uint32_t line = 0;
};

struct GlobalDecl
{
    MiniTy ty = MiniTy::Int;
    std::string name;
    uint32_t arrayLen = 0;     ///< 0 => scalar
    bool hasInit = false;
    int64_t initInt = 0;       ///< scalar initializer
    std::string initStr;       ///< char-array initializer
    uint32_t line = 0;
};

struct Program
{
    std::vector<GlobalDecl> globals;
    std::vector<FuncDecl> functions;
};

} // namespace ipds

#endif // IPDS_FRONTEND_AST_H
