#include "frontend/lexer.h"

#include <cctype>
#include <unordered_map>

#include "support/diag.h"

namespace ipds {

const char *
tokName(Tok t)
{
    switch (t) {
      case Tok::End: return "<eof>";
      case Tok::Ident: return "identifier";
      case Tok::IntLit: return "integer literal";
      case Tok::StrLit: return "string literal";
      case Tok::CharLit: return "char literal";
      case Tok::KwInt: return "'int'";
      case Tok::KwChar: return "'char'";
      case Tok::KwVoid: return "'void'";
      case Tok::KwIf: return "'if'";
      case Tok::KwElse: return "'else'";
      case Tok::KwWhile: return "'while'";
      case Tok::KwFor: return "'for'";
      case Tok::KwReturn: return "'return'";
      case Tok::KwBreak: return "'break'";
      case Tok::KwContinue: return "'continue'";
      case Tok::LParen: return "'('";
      case Tok::RParen: return "')'";
      case Tok::LBrace: return "'{'";
      case Tok::RBrace: return "'}'";
      case Tok::LBracket: return "'['";
      case Tok::RBracket: return "']'";
      case Tok::Comma: return "','";
      case Tok::Semi: return "';'";
      case Tok::Assign: return "'='";
      case Tok::Plus: return "'+'";
      case Tok::Minus: return "'-'";
      case Tok::Star: return "'*'";
      case Tok::Slash: return "'/'";
      case Tok::Percent: return "'%'";
      case Tok::Amp: return "'&'";
      case Tok::Pipe: return "'|'";
      case Tok::Caret: return "'^'";
      case Tok::Shl: return "'<<'";
      case Tok::Shr: return "'>>'";
      case Tok::AmpAmp: return "'&&'";
      case Tok::PipePipe: return "'||'";
      case Tok::Bang: return "'!'";
      case Tok::Eq: return "'=='";
      case Tok::Ne: return "'!='";
      case Tok::Lt: return "'<'";
      case Tok::Le: return "'<='";
      case Tok::Gt: return "'>'";
      case Tok::Ge: return "'>='";
    }
    return "?";
}

namespace {

const std::unordered_map<std::string, Tok> keywords = {
    {"int", Tok::KwInt}, {"char", Tok::KwChar}, {"void", Tok::KwVoid},
    {"if", Tok::KwIf}, {"else", Tok::KwElse}, {"while", Tok::KwWhile},
    {"for", Tok::KwFor}, {"return", Tok::KwReturn},
    {"break", Tok::KwBreak}, {"continue", Tok::KwContinue},
};

/** Decode one escape sequence after a backslash; advances @p i. */
char
decodeEscape(const std::string &src, size_t &i, uint32_t line)
{
    if (i >= src.size())
        fatal("line %u: dangling backslash", line);
    char c = src[i++];
    switch (c) {
      case 'n': return '\n';
      case 't': return '\t';
      case 'r': return '\r';
      case '0': return '\0';
      case '\\': return '\\';
      case '\'': return '\'';
      case '"': return '"';
      default:
        fatal("line %u: unknown escape '\\%c'", line, c);
    }
}

} // namespace

std::vector<Token>
tokenize(const std::string &src)
{
    std::vector<Token> out;
    size_t i = 0;
    uint32_t line = 1;

    auto push = [&](Tok kind) {
        Token t;
        t.kind = kind;
        t.line = line;
        out.push_back(std::move(t));
    };

    while (i < src.size()) {
        char c = src[i];
        if (c == '\n') {
            line++;
            i++;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            i++;
            continue;
        }
        // comments
        if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
            while (i < src.size() && src[i] != '\n')
                i++;
            continue;
        }
        if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
            i += 2;
            while (i + 1 < src.size() &&
                   !(src[i] == '*' && src[i + 1] == '/')) {
                if (src[i] == '\n')
                    line++;
                i++;
            }
            if (i + 1 >= src.size())
                fatal("line %u: unterminated block comment", line);
            i += 2;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            int64_t v = 0;
            while (i < src.size() &&
                   std::isdigit(static_cast<unsigned char>(src[i]))) {
                v = v * 10 + (src[i] - '0');
                i++;
            }
            Token t;
            t.kind = Tok::IntLit;
            t.value = v;
            t.line = line;
            out.push_back(std::move(t));
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            size_t start = i;
            while (i < src.size() &&
                   (std::isalnum(static_cast<unsigned char>(src[i])) ||
                    src[i] == '_')) {
                i++;
            }
            std::string word = src.substr(start, i - start);
            auto kw = keywords.find(word);
            Token t;
            t.line = line;
            if (kw != keywords.end()) {
                t.kind = kw->second;
            } else {
                t.kind = Tok::Ident;
                t.text = std::move(word);
            }
            out.push_back(std::move(t));
            continue;
        }
        if (c == '"') {
            i++;
            std::string bytes;
            while (i < src.size() && src[i] != '"') {
                if (src[i] == '\n')
                    fatal("line %u: newline in string literal", line);
                if (src[i] == '\\') {
                    i++;
                    bytes.push_back(decodeEscape(src, i, line));
                } else {
                    bytes.push_back(src[i++]);
                }
            }
            if (i >= src.size())
                fatal("line %u: unterminated string literal", line);
            i++;
            Token t;
            t.kind = Tok::StrLit;
            t.text = std::move(bytes);
            t.line = line;
            out.push_back(std::move(t));
            continue;
        }
        if (c == '\'') {
            i++;
            if (i >= src.size())
                fatal("line %u: unterminated char literal", line);
            char v;
            if (src[i] == '\\') {
                i++;
                v = decodeEscape(src, i, line);
            } else {
                v = src[i++];
            }
            if (i >= src.size() || src[i] != '\'')
                fatal("line %u: unterminated char literal", line);
            i++;
            Token t;
            t.kind = Tok::CharLit;
            t.value = static_cast<unsigned char>(v);
            t.line = line;
            out.push_back(std::move(t));
            continue;
        }

        auto two = [&](char second) {
            return i + 1 < src.size() && src[i + 1] == second;
        };
        switch (c) {
          case '(': push(Tok::LParen); i++; break;
          case ')': push(Tok::RParen); i++; break;
          case '{': push(Tok::LBrace); i++; break;
          case '}': push(Tok::RBrace); i++; break;
          case '[': push(Tok::LBracket); i++; break;
          case ']': push(Tok::RBracket); i++; break;
          case ',': push(Tok::Comma); i++; break;
          case ';': push(Tok::Semi); i++; break;
          case '+': push(Tok::Plus); i++; break;
          case '-': push(Tok::Minus); i++; break;
          case '*': push(Tok::Star); i++; break;
          case '/': push(Tok::Slash); i++; break;
          case '%': push(Tok::Percent); i++; break;
          case '^': push(Tok::Caret); i++; break;
          case '&':
            if (two('&')) { push(Tok::AmpAmp); i += 2; }
            else { push(Tok::Amp); i++; }
            break;
          case '|':
            if (two('|')) { push(Tok::PipePipe); i += 2; }
            else { push(Tok::Pipe); i++; }
            break;
          case '=':
            if (two('=')) { push(Tok::Eq); i += 2; }
            else { push(Tok::Assign); i++; }
            break;
          case '!':
            if (two('=')) { push(Tok::Ne); i += 2; }
            else { push(Tok::Bang); i++; }
            break;
          case '<':
            if (two('=')) { push(Tok::Le); i += 2; }
            else if (two('<')) { push(Tok::Shl); i += 2; }
            else { push(Tok::Lt); i++; }
            break;
          case '>':
            if (two('=')) { push(Tok::Ge); i += 2; }
            else if (two('>')) { push(Tok::Shr); i += 2; }
            else { push(Tok::Gt); i++; }
            break;
          default:
            fatal("line %u: unexpected character '%c'", line, c);
        }
    }
    push(Tok::End);
    return out;
}

} // namespace ipds
