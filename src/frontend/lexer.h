#ifndef IPDS_FRONTEND_LEXER_H
#define IPDS_FRONTEND_LEXER_H

/**
 * @file
 * Tokenizer for MiniC, the small C-like language the workloads are
 * written in (see README for the language reference).
 */

#include <cstdint>
#include <string>
#include <vector>

namespace ipds {

/** Token kinds. One enumerator per punctuator/keyword/literal class. */
enum class Tok : uint8_t
{
    End, Ident, IntLit, StrLit, CharLit,
    // keywords
    KwInt, KwChar, KwVoid, KwIf, KwElse, KwWhile, KwFor, KwReturn,
    KwBreak, KwContinue,
    // punctuation
    LParen, RParen, LBrace, RBrace, LBracket, RBracket,
    Comma, Semi,
    // operators
    Assign, Plus, Minus, Star, Slash, Percent,
    Amp, Pipe, Caret, Shl, Shr,
    AmpAmp, PipePipe, Bang,
    Eq, Ne, Lt, Le, Gt, Ge,
};

/** A single token with its source position and payload. */
struct Token
{
    Tok kind = Tok::End;
    std::string text;   ///< identifier spelling or string-literal bytes
    int64_t value = 0;  ///< integer/char literal value
    uint32_t line = 1;
};

/** Printable name of a token kind, for diagnostics. */
const char *tokName(Tok t);

/**
 * Tokenize @p src. Throws FatalError with a line number on malformed
 * input (unterminated string, bad character, bad escape).
 */
std::vector<Token> tokenize(const std::string &src);

} // namespace ipds

#endif // IPDS_FRONTEND_LEXER_H
