#include "frontend/parser.h"

#include "frontend/lexer.h"
#include "support/diag.h"

namespace ipds {

namespace {

/**
 * The parser proper. Standard recursive descent with precedence
 * climbing for binary expressions.
 */
class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens)
        : toks(std::move(tokens))
    {}

    Program
    run()
    {
        Program prog;
        while (!at(Tok::End)) {
            // Both globals and functions start with a type keyword.
            uint32_t line = cur().line;
            MiniTy ty = parseType(true);
            std::string name = expectIdent();
            if (at(Tok::LParen)) {
                prog.functions.push_back(parseFunction(ty, name, line));
            } else {
                prog.globals.push_back(parseGlobal(ty, name, line));
            }
        }
        return prog;
    }

  private:
    const Token &cur() const { return toks[pos]; }
    bool at(Tok t) const { return cur().kind == t; }

    const Token &
    advance()
    {
        const Token &t = cur();
        if (t.kind != Tok::End)
            pos++;
        return t;
    }

    bool
    accept(Tok t)
    {
        if (at(t)) {
            advance();
            return true;
        }
        return false;
    }

    const Token &
    expect(Tok t)
    {
        if (!at(t))
            fatal("line %u: expected %s, found %s",
                  cur().line, tokName(t), tokName(cur().kind));
        return advance();
    }

    std::string
    expectIdent()
    {
        return expect(Tok::Ident).text;
    }

    /** Parse a type spec: int, char, void (if allowed), with '*'. */
    MiniTy
    parseType(bool allow_void)
    {
        MiniTy base;
        if (accept(Tok::KwInt)) {
            base = MiniTy::Int;
        } else if (accept(Tok::KwChar)) {
            base = MiniTy::Char;
        } else if (allow_void && accept(Tok::KwVoid)) {
            return MiniTy::Void;
        } else {
            fatal("line %u: expected a type, found %s",
                  cur().line, tokName(cur().kind));
        }
        if (accept(Tok::Star))
            return base == MiniTy::Int ? MiniTy::PtrInt : MiniTy::PtrChar;
        return base;
    }

    GlobalDecl
    parseGlobal(MiniTy ty, std::string name, uint32_t line)
    {
        if (ty == MiniTy::Void)
            fatal("line %u: global '%s' cannot be void",
                  line, name.c_str());
        GlobalDecl g;
        g.ty = ty;
        g.name = std::move(name);
        g.line = line;
        if (accept(Tok::LBracket)) {
            g.arrayLen =
                static_cast<uint32_t>(expect(Tok::IntLit).value);
            expect(Tok::RBracket);
            if (g.arrayLen == 0)
                fatal("line %u: zero-length array", line);
        }
        if (accept(Tok::Assign)) {
            g.hasInit = true;
            if (at(Tok::StrLit)) {
                if (g.ty != MiniTy::Char || g.arrayLen == 0)
                    fatal("line %u: string initializer needs char[]",
                          line);
                g.initStr = advance().text;
            } else if (at(Tok::IntLit) || at(Tok::CharLit)) {
                g.initInt = advance().value;
            } else if (at(Tok::Minus)) {
                advance();
                g.initInt = -expect(Tok::IntLit).value;
            } else {
                fatal("line %u: bad global initializer", cur().line);
            }
        }
        expect(Tok::Semi);
        return g;
    }

    FuncDecl
    parseFunction(MiniTy ret_ty, std::string name, uint32_t line)
    {
        FuncDecl fn;
        fn.retTy = ret_ty;
        fn.name = std::move(name);
        fn.line = line;
        expect(Tok::LParen);
        if (!at(Tok::RParen)) {
            if (accept(Tok::KwVoid)) {
                // "f(void)" — empty parameter list
            } else {
                do {
                    ParamDecl p;
                    p.ty = parseType(false);
                    p.name = expectIdent();
                    fn.params.push_back(std::move(p));
                } while (accept(Tok::Comma));
            }
        }
        expect(Tok::RParen);
        fn.body = parseBlock();
        return fn;
    }

    StmtPtr
    makeStmt(StmtKind kind, uint32_t line)
    {
        auto s = std::make_unique<Stmt>();
        s->kind = kind;
        s->line = line;
        return s;
    }

    StmtPtr
    parseBlock()
    {
        uint32_t line = cur().line;
        expect(Tok::LBrace);
        auto blk = makeStmt(StmtKind::Block, line);
        while (!at(Tok::RBrace) && !at(Tok::End))
            blk->body.push_back(parseStmt());
        expect(Tok::RBrace);
        return blk;
    }

    StmtPtr
    parseStmt()
    {
        uint32_t line = cur().line;
        if (at(Tok::LBrace))
            return parseBlock();
        if (at(Tok::KwInt) || at(Tok::KwChar))
            return parseDecl();
        if (accept(Tok::KwIf)) {
            auto s = makeStmt(StmtKind::If, line);
            expect(Tok::LParen);
            s->cond = parseExpr();
            expect(Tok::RParen);
            s->thenBody = parseStmt();
            if (accept(Tok::KwElse))
                s->elseBody = parseStmt();
            return s;
        }
        if (accept(Tok::KwWhile)) {
            auto s = makeStmt(StmtKind::While, line);
            expect(Tok::LParen);
            s->cond = parseExpr();
            expect(Tok::RParen);
            s->thenBody = parseStmt();
            return s;
        }
        if (accept(Tok::KwFor)) {
            auto s = makeStmt(StmtKind::For, line);
            expect(Tok::LParen);
            if (!at(Tok::Semi))
                s->init = parseSimpleStmt();
            expect(Tok::Semi);
            if (!at(Tok::Semi))
                s->cond = parseExpr();
            expect(Tok::Semi);
            if (!at(Tok::RParen))
                s->step = parseSimpleStmt();
            expect(Tok::RParen);
            s->thenBody = parseStmt();
            return s;
        }
        if (accept(Tok::KwReturn)) {
            auto s = makeStmt(StmtKind::Return, line);
            if (!at(Tok::Semi))
                s->expr = parseExpr();
            expect(Tok::Semi);
            return s;
        }
        if (accept(Tok::KwBreak)) {
            expect(Tok::Semi);
            return makeStmt(StmtKind::Break, line);
        }
        if (accept(Tok::KwContinue)) {
            expect(Tok::Semi);
            return makeStmt(StmtKind::Continue, line);
        }
        auto s = parseSimpleStmt();
        expect(Tok::Semi);
        return s;
    }

    StmtPtr
    parseDecl()
    {
        uint32_t line = cur().line;
        auto s = makeStmt(StmtKind::Decl, line);
        s->declTy = parseType(false);
        s->declName = expectIdent();
        if (accept(Tok::LBracket)) {
            if (isPtr(s->declTy))
                fatal("line %u: array of pointers not supported", line);
            s->arrayLen =
                static_cast<uint32_t>(expect(Tok::IntLit).value);
            expect(Tok::RBracket);
            if (s->arrayLen == 0)
                fatal("line %u: zero-length array", line);
        }
        // Optional initializer desugars to declaration + assignment,
        // wrapped in a block so one Stmt is still returned.
        if (accept(Tok::Assign)) {
            if (s->arrayLen != 0)
                fatal("line %u: local array initializers not supported",
                      line);
            auto asn = makeStmt(StmtKind::Assign, line);
            auto tgt = std::make_unique<Expr>();
            tgt->kind = ExprKind::Var;
            tgt->line = line;
            tgt->name = s->declName;
            asn->target = std::move(tgt);
            asn->value = parseExpr();
            expect(Tok::Semi);
            auto blk = makeStmt(StmtKind::Block, line);
            blk->body.push_back(std::move(s));
            blk->body.push_back(std::move(asn));
            return blk;
        }
        expect(Tok::Semi);
        return s;
    }

    /** Assignment or expression statement, without the trailing ';'. */
    StmtPtr
    parseSimpleStmt()
    {
        uint32_t line = cur().line;
        ExprPtr e = parseExpr();
        if (accept(Tok::Assign)) {
            if (e->kind != ExprKind::Var && e->kind != ExprKind::Index &&
                e->kind != ExprKind::Deref) {
                fatal("line %u: invalid assignment target", line);
            }
            auto s = makeStmt(StmtKind::Assign, line);
            s->target = std::move(e);
            s->value = parseExpr();
            return s;
        }
        auto s = makeStmt(StmtKind::ExprStmt, line);
        s->expr = std::move(e);
        return s;
    }

    // ---- expressions, precedence climbing ---------------------------

    ExprPtr
    makeExpr(ExprKind kind, uint32_t line)
    {
        auto e = std::make_unique<Expr>();
        e->kind = kind;
        e->line = line;
        return e;
    }

    ExprPtr
    parseExpr()
    {
        return parseBinary(0);
    }

    /** Binding power of a binary operator token; -1 if not binary. */
    static int
    precedence(Tok t)
    {
        switch (t) {
          case Tok::PipePipe: return 1;
          case Tok::AmpAmp: return 2;
          case Tok::Pipe: return 3;
          case Tok::Caret: return 4;
          case Tok::Amp: return 5;
          case Tok::Eq: case Tok::Ne: return 6;
          case Tok::Lt: case Tok::Le: case Tok::Gt: case Tok::Ge:
            return 7;
          case Tok::Shl: case Tok::Shr: return 8;
          case Tok::Plus: case Tok::Minus: return 9;
          case Tok::Star: case Tok::Slash: case Tok::Percent: return 10;
          default: return -1;
        }
    }

    static BinKind
    binKindFor(Tok t)
    {
        switch (t) {
          case Tok::PipePipe: return BinKind::LogOr;
          case Tok::AmpAmp: return BinKind::LogAnd;
          case Tok::Pipe: return BinKind::BitOr;
          case Tok::Caret: return BinKind::BitXor;
          case Tok::Amp: return BinKind::BitAnd;
          case Tok::Eq: return BinKind::Eq;
          case Tok::Ne: return BinKind::Ne;
          case Tok::Lt: return BinKind::Lt;
          case Tok::Le: return BinKind::Le;
          case Tok::Gt: return BinKind::Gt;
          case Tok::Ge: return BinKind::Ge;
          case Tok::Shl: return BinKind::Shl;
          case Tok::Shr: return BinKind::Shr;
          case Tok::Plus: return BinKind::Add;
          case Tok::Minus: return BinKind::Sub;
          case Tok::Star: return BinKind::Mul;
          case Tok::Slash: return BinKind::Div;
          case Tok::Percent: return BinKind::Rem;
          default: panic("binKindFor: not a binary operator");
        }
    }

    ExprPtr
    parseBinary(int min_prec)
    {
        ExprPtr lhs = parseUnary();
        while (true) {
            int prec = precedence(cur().kind);
            if (prec < 0 || prec < min_prec)
                return lhs;
            Tok opTok = advance().kind;
            ExprPtr rhs = parseBinary(prec + 1);
            auto e = makeExpr(ExprKind::Binary, lhs->line);
            e->binOp = binKindFor(opTok);
            e->lhs = std::move(lhs);
            e->rhs = std::move(rhs);
            lhs = std::move(e);
        }
    }

    ExprPtr
    parseUnary()
    {
        uint32_t line = cur().line;
        if (accept(Tok::Minus)) {
            auto e = makeExpr(ExprKind::Unary, line);
            e->unOp = UnOp::Neg;
            e->lhs = parseUnary();
            return e;
        }
        if (accept(Tok::Bang)) {
            auto e = makeExpr(ExprKind::Unary, line);
            e->unOp = UnOp::Not;
            e->lhs = parseUnary();
            return e;
        }
        if (accept(Tok::Star)) {
            auto e = makeExpr(ExprKind::Deref, line);
            e->lhs = parseUnary();
            return e;
        }
        if (accept(Tok::Amp)) {
            auto e = makeExpr(ExprKind::AddrOf, line);
            e->name = expectIdent();
            return e;
        }
        return parsePostfix();
    }

    ExprPtr
    parsePostfix()
    {
        ExprPtr e = parsePrimary();
        while (at(Tok::LBracket)) {
            uint32_t line = advance().line;
            auto idx = makeExpr(ExprKind::Index, line);
            idx->lhs = std::move(e);
            idx->rhs = parseExpr();
            expect(Tok::RBracket);
            e = std::move(idx);
        }
        return e;
    }

    ExprPtr
    parsePrimary()
    {
        uint32_t line = cur().line;
        if (at(Tok::IntLit) || at(Tok::CharLit)) {
            auto e = makeExpr(ExprKind::IntLit, line);
            e->intValue = advance().value;
            return e;
        }
        if (at(Tok::StrLit)) {
            auto e = makeExpr(ExprKind::StrLit, line);
            e->strValue = advance().text;
            return e;
        }
        if (accept(Tok::LParen)) {
            ExprPtr e = parseExpr();
            expect(Tok::RParen);
            return e;
        }
        if (at(Tok::Ident)) {
            std::string name = advance().text;
            if (accept(Tok::LParen)) {
                auto e = makeExpr(ExprKind::Call, line);
                e->name = std::move(name);
                if (!at(Tok::RParen)) {
                    do {
                        e->args.push_back(parseExpr());
                    } while (accept(Tok::Comma));
                }
                expect(Tok::RParen);
                return e;
            }
            auto e = makeExpr(ExprKind::Var, line);
            e->name = std::move(name);
            return e;
        }
        fatal("line %u: unexpected %s in expression",
              line, tokName(cur().kind));
    }

    std::vector<Token> toks;
    size_t pos = 0;
};

} // namespace

Program
parseProgram(const std::string &src)
{
    return Parser(tokenize(src)).run();
}

} // namespace ipds
