#ifndef IPDS_REPLAY_READER_H
#define IPDS_REPLAY_READER_H

/**
 * @file
 * Trace loading and decoding.
 *
 * TraceFile loads a whole trace into memory, verifies the header and
 * every chunk CRC up front, and exposes the chunk index; all
 * malformedness — bad magic, version skew, CRC mismatches, truncation,
 * impossible lengths — surfaces as a recoverable FatalError naming the
 * byte offset, never as a panic or undefined behaviour. validate()
 * runs the same checks without throwing and returns a tally (the
 * bench/CLI probe for corrupt inputs).
 *
 * TraceReader is a bounds-checked record cursor over one chunk
 * payload: every varint and operand read is length-checked, and a
 * record that runs past the payload is a FatalError.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "replay/format.h"

namespace ipds {
namespace replay {

/** One chunk's location inside the loaded trace. */
struct ChunkRef
{
    size_t payloadOff = 0; ///< into TraceFile::bytes()
    uint32_t payloadLen = 0;
    uint32_t events = 0;  ///< logical events (InstRun expanded)
    uint32_t session = 0; ///< every record belongs to this session
    uint32_t flags = 0;   ///< kChunkHasSnapshot etc. (v2)
    uint64_t firstSeq = 0; ///< session events preceding this chunk
    uint64_t endSeq = 0;   ///< firstSeq + events
};

/** Outcome of a non-throwing integrity scan. */
struct ValidateResult
{
    bool ok = false;
    uint64_t crcFailures = 0;      ///< header/chunk CRC mismatches
    uint64_t truncatedChunks = 0;  ///< bytes ran out mid-structure
    uint64_t versionMismatches = 0;
    /** Footer/trailer defects. Advisory only — the index is always
     *  recomputable by the sequential scan, so these never clear ok. */
    uint64_t indexDefects = 0;
    std::string error; ///< first problem found ("" when ok)
};

// ---- incremental framing (streamed ingest) ------------------------------
//
// The detection service parses the v1 byte stream as it arrives off a
// socket, so "not enough bytes yet" and "bytes are corrupt" MUST be
// distinguishable: the first means wait for more (retry), the second
// means reject the stream. TraceFile::parse shares these helpers, so
// a truncated file reports TruncatedChunk (the tail was cut — the
// transfer can be resumed/retried) while a CRC failure reports
// ChunkCrcMismatch (the data itself is bad), both in the FatalError
// text and in the ipds.replay.* counters.

enum class ParseStatus : uint8_t
{
    Ok,               ///< structure complete and valid
    NeedMore,         ///< truncated here: feed more bytes and retry
    TruncatedChunk = NeedMore, ///< alias: EOF mid-structure
    ChunkCrcMismatch, ///< framing intact, payload bytes corrupt
    VersionSkew,      ///< header from another format version
    Malformed,        ///< structurally impossible (reject)
};

/**
 * Parse a trace file header from the first @p n bytes of @p p. On Ok,
 * @p meta is filled and @p consumed is the full header size
 * (including the timing block). On any other status @p err (optional)
 * receives a one-line description; NeedMore means the prefix is
 * consistent but incomplete. A header CRC failure reports
 * ChunkCrcMismatch (same retry-vs-reject contract).
 */
ParseStatus parseHeader(const uint8_t *p, size_t n, TraceMeta &meta,
                        size_t &consumed, std::string *err);

/**
 * Parse one chunk (header + payload) from the first @p n bytes of
 * @p p. On Ok, @p out describes the chunk with payloadOff relative to
 * @p p and @p consumed is the chunk's total size; the payload CRC has
 * been verified. NeedMore/TruncatedChunk means the chunk is
 * incomplete (wait for more bytes); ChunkCrcMismatch means the
 * payload is corrupt (reject — retrying the same bytes cannot help).
 */
ParseStatus parseChunk(const uint8_t *p, size_t n, ChunkRef &out,
                       size_t &consumed, std::string *err);

/** How an indexed load resolved (see TraceFile::loadIndexed). */
struct IndexedLoad
{
    bool usedIndex = false;
    std::string reason; ///< why the footer was unusable ("" when used)
};

class TraceFile
{
  public:
    /** Load and verify @p path. Throws FatalError on any defect. */
    static TraceFile load(const std::string &path);

    /** Parse an in-memory image (tests). Throws FatalError. */
    static TraceFile fromBytes(std::vector<uint8_t> bytes);

    /**
     * Load @p path through the v2 chunk-index footer when present and
     * valid: the chunk index comes straight from the footer (one
     * CRC-checked read) and per-chunk payload CRC verification is
     * deferred to first touch (checkChunkCrc) — the single-pass win
     * parallel replay splits across its workers. A missing, truncated
     * or inconsistent footer degrades to the full sequential scan
     * (info->usedIndex=false with the reason); it never fails a file
     * the strict loader would accept.
     */
    static TraceFile loadIndexed(const std::string &path,
                                 IndexedLoad *info);
    static TraceFile fromBytesIndexed(std::vector<uint8_t> bytes,
                                      IndexedLoad *info);

    /** Integrity scan of @p path without throwing. */
    static ValidateResult validate(const std::string &path);
    static ValidateResult validateBytes(const std::vector<uint8_t> &b);

    const TraceMeta &meta() const { return meta_; }
    const std::vector<ChunkRef> &chunks() const { return index; }
    const uint8_t *payload(const ChunkRef &c) const
    {
        return bytes_.data() + c.payloadOff;
    }
    size_t fileBytes() const { return bytes_.size(); }

    /** True when a CRC-valid index footer chunk was present. */
    bool hasIndexFooter() const { return hasFooter_; }
    /** Bytes of footer chunk + trailer (0 for v1 traces). */
    uint64_t indexBytes() const { return indexBytes_; }

    /** True for indexed loads: payload CRCs were not verified at load
     *  time and each consumer must call checkChunkCrc before decoding
     *  a chunk. */
    bool crcDeferred() const { return crcDeferred_; }
    /** Verify @p c's payload CRC now; FatalError on mismatch. */
    void checkChunkCrc(const ChunkRef &c) const;

  private:
    /**
     * Shared parser. With @p issues null the first defect is a
     * FatalError; otherwise defects are tallied (CRC-bad chunks are
     * skipped) and parsing continues where structurally possible.
     */
    void parse(ValidateResult *issues);

    /** Try to build `index` from the footer; false = fall back. */
    bool parseFromFooter(std::string *reason);

    TraceMeta meta_;
    std::vector<ChunkRef> index;
    std::vector<uint8_t> bytes_;
    bool hasFooter_ = false;
    uint64_t indexBytes_ = 0;
    bool crcDeferred_ = false;
};

/**
 * Read and verify just the header of @p path (geometry validation
 * before committing to a full load). Throws FatalError on any header
 * defect.
 */
TraceMeta readTraceHeader(const std::string &path);

/**
 * Bounds-checked decoder over one chunk payload. Usage:
 *
 *   TraceReader r(file.payload(c), c.payloadLen);
 *   while (!r.atEnd()) { Tag t = r.tag(); ... operand reads ... }
 *
 * The PC/address delta context is the caller's (replay engine keeps
 * it per chunk); the reader only frames bytes.
 */
class TraceReader
{
  public:
    TraceReader(const uint8_t *p, size_t n) : p_(p), n_(n) {}

    bool atEnd() const { return off == n_; }
    size_t offset() const { return off; }

    /** Next record tag. FatalError on an unknown tag byte. */
    Tag tag();

    /** LEB128 varint. FatalError past the payload end. */
    uint64_t var();
    int64_t svar() { return zigzagDecode(var()); }

    /** One raw byte. */
    uint8_t byte();

    /** Borrow @p n raw bytes (snapshot blobs). FatalError if short. */
    const uint8_t *bytes(size_t n);

    /** Skip @p n raw bytes. FatalError if short. */
    void skip(size_t n);

  private:
    [[noreturn]] void truncated() const;

    const uint8_t *p_;
    size_t n_;
    size_t off = 0;
};

} // namespace replay
} // namespace ipds

#endif // IPDS_REPLAY_READER_H
