#ifndef IPDS_REPLAY_READER_H
#define IPDS_REPLAY_READER_H

/**
 * @file
 * Trace loading and decoding.
 *
 * TraceFile loads a whole trace into memory, verifies the header and
 * every chunk CRC up front, and exposes the chunk index; all
 * malformedness — bad magic, version skew, CRC mismatches, truncation,
 * impossible lengths — surfaces as a recoverable FatalError naming the
 * byte offset, never as a panic or undefined behaviour. validate()
 * runs the same checks without throwing and returns a tally (the
 * bench/CLI probe for corrupt inputs).
 *
 * TraceReader is a bounds-checked record cursor over one chunk
 * payload: every varint and operand read is length-checked, and a
 * record that runs past the payload is a FatalError.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "replay/format.h"

namespace ipds {
namespace replay {

/** One chunk's location inside the loaded trace. */
struct ChunkRef
{
    size_t payloadOff = 0; ///< into TraceFile::bytes()
    uint32_t payloadLen = 0;
    uint32_t events = 0;  ///< logical events (InstRun expanded)
    uint32_t session = 0; ///< every record belongs to this session
};

/** Outcome of a non-throwing integrity scan. */
struct ValidateResult
{
    bool ok = false;
    uint64_t crcFailures = 0;
    uint64_t versionMismatches = 0;
    std::string error; ///< first problem found ("" when ok)
};

class TraceFile
{
  public:
    /** Load and verify @p path. Throws FatalError on any defect. */
    static TraceFile load(const std::string &path);

    /** Parse an in-memory image (tests). Throws FatalError. */
    static TraceFile fromBytes(std::vector<uint8_t> bytes);

    /** Integrity scan of @p path without throwing. */
    static ValidateResult validate(const std::string &path);
    static ValidateResult validateBytes(const std::vector<uint8_t> &b);

    const TraceMeta &meta() const { return meta_; }
    const std::vector<ChunkRef> &chunks() const { return index; }
    const uint8_t *payload(const ChunkRef &c) const
    {
        return bytes_.data() + c.payloadOff;
    }
    size_t fileBytes() const { return bytes_.size(); }

  private:
    /**
     * Shared parser. With @p issues null the first defect is a
     * FatalError; otherwise defects are tallied (CRC-bad chunks are
     * skipped) and parsing continues where structurally possible.
     */
    void parse(ValidateResult *issues);

    TraceMeta meta_;
    std::vector<ChunkRef> index;
    std::vector<uint8_t> bytes_;
};

/**
 * Bounds-checked decoder over one chunk payload. Usage:
 *
 *   TraceReader r(file.payload(c), c.payloadLen);
 *   while (!r.atEnd()) { Tag t = r.tag(); ... operand reads ... }
 *
 * The PC/address delta context is the caller's (replay engine keeps
 * it per chunk); the reader only frames bytes.
 */
class TraceReader
{
  public:
    TraceReader(const uint8_t *p, size_t n) : p_(p), n_(n) {}

    bool atEnd() const { return off == n_; }
    size_t offset() const { return off; }

    /** Next record tag. FatalError on an unknown tag byte. */
    Tag tag();

    /** LEB128 varint. FatalError past the payload end. */
    uint64_t var();
    int64_t svar() { return zigzagDecode(var()); }

    /** One raw byte. */
    uint8_t byte();

  private:
    [[noreturn]] void truncated() const;

    const uint8_t *p_;
    size_t n_;
    size_t off = 0;
};

} // namespace replay
} // namespace ipds

#endif // IPDS_REPLAY_READER_H
