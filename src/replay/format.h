#ifndef IPDS_REPLAY_FORMAT_H
#define IPDS_REPLAY_FORMAT_H

/**
 * @file
 * The IPDS event-trace format: a compact, versioned binary encoding of
 * the committed-event stream one `Vm` run (or a whole multi-session
 * Session) delivers to its observers. Nothing in the BSV/BCV/BAT
 * pipeline requires the program to be *executing* while it is checked,
 * so a recorded trace can be re-detected — and re-timed — offline, at
 * decode speed instead of interpretation speed (DESIGN.md "Trace
 * capture & replay").
 *
 * File layout (all fields little-endian):
 *
 *   header   : magic[8] "IPDSTRC\0"
 *              u32 version            (kTraceVersion)
 *              u32 flags              (kFlag* bits)
 *              u64 moduleHash         (moduleContentHash of the program)
 *              u32 sessions           (total sessions recorded)
 *              u32 shards             (capture shard count; replay
 *                                      re-shards identically)
 *              u32 timingWords        (0, or kTimingConfigWords)
 *              u32 headerCrc          (crc32 of the 36 bytes above)
 *              u32 timing[timingWords] (serialized TimingConfig)
 *   chunk*   : u32 payloadLen
 *              u32 recordCount
 *              u32 session            (every record in a chunk belongs
 *                                      to this session)
 *              u32 payloadCrc         (crc32 of the payload bytes)
 *              u8  payload[payloadLen]
 *
 * Chunks are self-contained: the PC/address delta context resets at
 * each chunk start, and a chunk never spans a session boundary (a
 * SessionStart record always opens a fresh chunk). Sharded replay
 * therefore splits the file at chunk boundaries by session index,
 * using the same fixed `sessions/shards` partition as the live run.
 *
 * Record encoding: one tag byte, then varint operands. PCs are
 * 4-byte-aligned (Module::assignAddresses), so PC deltas are encoded
 * as zigzag(delta/4); a sequential instruction run (pc += 4 each) is
 * a single InstRun record. Data addresses are zigzag deltas from the
 * previous data address in the chunk.
 *
 * Versioning policy: ANY change to the header layout, the serialized
 * TimingConfig field set, a record's operand list, or a tag value
 * requires bumping kTraceVersion. The golden-fixture test
 * (tests/test_replay.cc) fails loudly when the encoder's output for a
 * pinned program changes while the version does not.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "timing/config.h"

namespace ipds {

struct Module;

namespace replay {

/** First 8 bytes of every trace file. */
inline constexpr unsigned char kTraceMagic[8] = {'I', 'P', 'D', 'S',
                                                 'T', 'R', 'C', 0};

/** Bump on ANY encoding change (see versioning policy above). */
inline constexpr uint32_t kTraceVersion = 2;

/** Oldest version readers still accept (v1 replays sequentially). */
inline constexpr uint32_t kMinTraceVersion = 1;

/** Fixed byte counts of the framing structures. */
inline constexpr size_t kHeaderBytes = 40; ///< before the timing block
inline constexpr size_t kChunkHeaderBytes = 16;

/** Header flag bits. */
inline constexpr uint32_t kFlagFullStream = 1u << 0; ///< inst events
inline constexpr uint32_t kFlagTiming = 1u << 1;     ///< timing block
inline constexpr uint32_t kFlagFault = 1u << 2;      ///< fault records
inline constexpr uint32_t kFlagDetector = 1u << 3;   ///< detector ran

/** u32 count of the serialized TimingConfig block. */
inline constexpr uint32_t kTimingConfigWords = 41;

/** Record tags. Values are part of the format — append only. */
enum class Tag : uint8_t
{
    FuncEnter = 1,    ///< varint funcId
    FuncExit = 2,     ///< varint funcId
    BranchTaken = 3,  ///< svarint pcStep
    BranchNotTaken = 4, ///< svarint pcStep
    Inst = 5,         ///< svarint pcStep (non-branch, no data access)
    InstRun = 6,      ///< varint count (sequential insts, pc += 4 each)
    MemInst = 7,      ///< svarint pcStep, svarint addrDelta
    BsvFlip = 8,      ///< varint slot, u8 state (fault side channel)
    CtxSwitch = 9,    ///< u8 lazy (fault side channel)
    SessionStart = 10, ///< varint session, u8 ringFault,
                       ///< [varint dropPermille, dupPermille, seed]
    SessionEnd = 11,  ///< varint steps, inputEvents, memTampers,
                      ///< instructions, blocks, batchFlushes
    Snapshot = 12,    ///< varint blobLen, u8 blob[] (v2; see snapshot.h)
};

/** Payload bytes buffered before a chunk is flushed. */
inline constexpr size_t kChunkPayloadCap = 48 * 1024;

// ---- v2 chunk-index footer ----------------------------------------------
//
// A v2 writer appends, after the last data chunk, one *index chunk*
// reusing the ordinary chunk framing with the reserved session index
// kIndexSession (so a v1-era scanner that ignores it still sees a
// well-formed chunk), followed by a fixed 16-byte trailer:
//
//   footer   : u32 payloadLen           (entryCount * kIndexEntryBytes)
//              u32 recordCount          (= entryCount)
//              u32 session              (kIndexSession sentinel)
//              u32 payloadCrc           (crc32 of the entry payload —
//                                        the "CRC of the index itself")
//              entry[entryCount]        (one per data chunk, in order)
//   trailer  : magic[8] "IPDSIDX\0"
//              u64 footerOffset         (file offset of the footer's
//                                        chunk header)
//
// Each 40-byte entry describes one data chunk:
//
//   u64 fileOffset   (of the chunk header)
//   u32 payloadLen
//   u32 events       (recordCount of the chunk)
//   u32 session
//   u32 flags        (kChunkHasSnapshot: payload opens with a
//                     Tag::Snapshot record)
//   u64 firstSeq     (events recorded in this session before the chunk)
//   u64 endSeq       (= firstSeq + events)
//
// The footer is strictly advisory: a reader that finds it missing,
// truncated, or corrupt falls back to the sequential scan (which
// recomputes the identical index) instead of failing the file.

/** Reserved chunk session index marking the footer chunk (v2). */
inline constexpr uint32_t kIndexSession = 0xFFFFFFFFu;

/** Trailing magic closing a v2 file with an index footer. */
inline constexpr unsigned char kIndexTrailerMagic[8] = {
    'I', 'P', 'D', 'S', 'I', 'D', 'X', 0};

inline constexpr size_t kIndexTrailerBytes = 16;
inline constexpr size_t kIndexEntryBytes = 40;

/** Sanity cap on the footer payload (≈1.6M chunks ≈ 80 GiB trace). */
inline constexpr size_t kIndexPayloadCap = 64 * 1024 * 1024;

/** ChunkIndexEntry::flags bits. */
inline constexpr uint32_t kChunkHasSnapshot = 1u << 0;

/** One data chunk as described by the index footer. */
struct ChunkIndexEntry
{
    uint64_t fileOffset = 0; ///< of the chunk header
    uint32_t payloadLen = 0;
    uint32_t events = 0;
    uint32_t session = 0;
    uint32_t flags = 0;
    uint64_t firstSeq = 0; ///< session-relative event sequence
    uint64_t endSeq = 0;   ///< firstSeq + events

    bool
    operator==(const ChunkIndexEntry &o) const
    {
        return fileOffset == o.fileOffset &&
            payloadLen == o.payloadLen && events == o.events &&
            session == o.session && flags == o.flags &&
            firstSeq == o.firstSeq && endSeq == o.endSeq;
    }
};

/** Encode/decode one index entry (kIndexEntryBytes each). */
void encodeIndexEntry(const ChunkIndexEntry &e, uint8_t *out);
ChunkIndexEntry decodeIndexEntry(const uint8_t *p);

/**
 * Append the footer chunk + trailer for @p entries to @p out, which
 * must already hold the header and all data chunks. @p footerFileOff
 * is the file offset the footer chunk header lands at (i.e. the
 * current size of @p out's stream).
 */
void appendIndexFooter(std::vector<uint8_t> &out,
                       const ChunkIndexEntry *entries, size_t count,
                       uint64_t footerFileOff);

// ---- primitive encoding -------------------------------------------------

/** CRC-32 (IEEE 802.3, reflected 0xEDB88320) of @p n bytes. */
uint32_t crc32(const uint8_t *p, size_t n);

inline uint64_t
zigzagEncode(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1) ^
        static_cast<uint64_t>(v >> 63);
}

inline int64_t
zigzagDecode(uint64_t u)
{
    return static_cast<int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

inline void
putU32(uint8_t *p, uint32_t v)
{
    p[0] = static_cast<uint8_t>(v);
    p[1] = static_cast<uint8_t>(v >> 8);
    p[2] = static_cast<uint8_t>(v >> 16);
    p[3] = static_cast<uint8_t>(v >> 24);
}

inline uint32_t
getU32(const uint8_t *p)
{
    return static_cast<uint32_t>(p[0]) |
        (static_cast<uint32_t>(p[1]) << 8) |
        (static_cast<uint32_t>(p[2]) << 16) |
        (static_cast<uint32_t>(p[3]) << 24);
}

inline void
putU64(uint8_t *p, uint64_t v)
{
    putU32(p, static_cast<uint32_t>(v));
    putU32(p + 4, static_cast<uint32_t>(v >> 32));
}

inline uint64_t
getU64(const uint8_t *p)
{
    return static_cast<uint64_t>(getU32(p)) |
        (static_cast<uint64_t>(getU32(p + 4)) << 32);
}

// ---- identity hashes ----------------------------------------------------

/**
 * Content hash of a module: function names, signatures and every
 * instruction field (including assigned PCs) plus object geometry.
 * Two modules with equal hashes decode a trace's PCs to the same
 * instructions; a trace recorded from a different program (or the
 * same source recompiled after an edit) is rejected as foreign.
 */
uint64_t moduleContentHash(const Module &mod);

/**
 * Serialize @p cfg into @p out (kTimingConfigWords u32 slots, fixed
 * field order) and the inverse. The field set is pinned by
 * kTraceVersion: adding a TimingConfig field that affects results
 * means extending this list AND bumping the version.
 */
void packTimingConfig(const TimingConfig &cfg, uint32_t *out);
TimingConfig unpackTimingConfig(const uint32_t *in);

/** Metadata carried by a trace header. */
struct TraceMeta
{
    uint32_t version = kTraceVersion;
    uint32_t flags = 0;
    uint64_t moduleHash = 0;
    uint32_t sessions = 0;
    uint32_t shards = 1;
    bool hasTiming = false;
    TimingConfig timing;

    bool fullStream() const { return flags & kFlagFullStream; }
    bool detectorOn() const { return flags & kFlagDetector; }
    bool faultCaptured() const { return flags & kFlagFault; }
};

/** Serialized header size for @p meta. */
inline size_t
headerBytes(const TraceMeta &meta)
{
    return kHeaderBytes +
        (meta.hasTiming ? 4 * kTimingConfigWords : 0);
}

/** Encode @p meta into a header blob (headerBytes(meta) long). */
void encodeHeader(const TraceMeta &meta, uint8_t *out);

} // namespace replay
} // namespace ipds

#endif // IPDS_REPLAY_FORMAT_H
