#include "replay/format.h"

#include <array>

#include "ir/ir.h"

namespace ipds {
namespace replay {

namespace {

std::array<uint32_t, 256>
makeCrcTable()
{
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
        t[i] = c;
    }
    return t;
}

const std::array<uint32_t, 256> kCrcTable = makeCrcTable();

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

struct Fnv
{
    uint64_t h = kFnvOffset;

    void byte(uint8_t b)
    {
        h ^= b;
        h *= kFnvPrime;
    }

    void u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            byte(static_cast<uint8_t>(v >> (8 * i)));
    }

    void str(const std::string &s)
    {
        u64(s.size());
        for (char c : s)
            byte(static_cast<uint8_t>(c));
    }
};

} // namespace

uint32_t
crc32(const uint8_t *p, size_t n)
{
    uint32_t c = 0xffffffffu;
    for (size_t i = 0; i < n; ++i)
        c = kCrcTable[(c ^ p[i]) & 0xff] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

uint64_t
moduleContentHash(const Module &mod)
{
    Fnv f;
    f.u64(mod.functions.size());
    f.u64(mod.objects.size());
    f.u64(mod.entry);
    for (const MemObject &o : mod.objects) {
        f.str(o.name);
        f.byte(static_cast<uint8_t>(o.kind));
        f.u64(o.owner);
        f.u64(o.size);
        f.byte(o.isArray ? 1 : 0);
        f.byte(static_cast<uint8_t>(o.elem));
        f.u64(o.init.size());
        for (uint8_t b : o.init)
            f.byte(b);
    }
    for (const Function &fn : mod.functions) {
        f.str(fn.name);
        f.u64(fn.numParams);
        f.byte(fn.returnsValue ? 1 : 0);
        f.u64(fn.blocks.size());
        f.u64(fn.entryPc);
        for (const BasicBlock &bb : fn.blocks) {
            f.u64(bb.insts.size());
            for (const Inst &in : bb.insts) {
                f.byte(static_cast<uint8_t>(in.op));
                f.byte(static_cast<uint8_t>(in.size));
                f.byte(static_cast<uint8_t>(in.bin));
                f.byte(static_cast<uint8_t>(in.pred));
                f.byte(static_cast<uint8_t>(in.builtin));
                f.u64(in.dst);
                f.u64(in.srcA);
                f.u64(in.srcB);
                f.u64(static_cast<uint64_t>(in.imm));
                f.u64(in.object);
                f.u64(in.callee);
                f.u64(in.target);
                f.u64(in.fallthrough);
                f.u64(in.args.size());
                for (Vreg a : in.args)
                    f.u64(a);
                f.u64(in.pc);
            }
        }
    }
    return f.h;
}

void
packTimingConfig(const TimingConfig &cfg, uint32_t *out)
{
    size_t i = 0;
    auto put = [&](uint32_t v) { out[i++] = v; };
    auto cache = [&](const CacheConfig &c) {
        put(c.sizeBytes);
        put(c.ways);
        put(c.blockBytes);
        put(c.latency);
    };
    put(cfg.fetchQueue);
    put(cfg.decodeWidth);
    put(cfg.issueWidth);
    put(cfg.commitWidth);
    put(cfg.ruuSize);
    put(cfg.lsqSize);
    cache(cfg.l1i);
    cache(cfg.l1d);
    cache(cfg.l2);
    put(cfg.memFirstChunk);
    put(cfg.memInterChunk);
    put(cfg.tlbMissCycles);
    put(cfg.tlbEntries);
    put(cfg.pageBytes);
    put(cfg.bhtEntries);
    put(cfg.historyBits);
    put(cfg.btbEntries);
    put(cfg.mispredictPenalty);
    put(cfg.ipdsEnabled ? 1 : 0);
    put(cfg.bsvStackBits);
    put(cfg.bcvStackBits);
    put(cfg.batStackBits);
    put(cfg.tableLatency);
    put(cfg.batEntriesPerAccess);
    put(cfg.requestQueueSize);
    put(cfg.spillCyclesPer512);
    put(cfg.requestRingCapacity);
    put(cfg.maxFrameDepth);
    put(cfg.inputCallInsts);
    put(cfg.outputCallInsts);
    put(cfg.stringCallInsts);
    put(cfg.builtinInstCost);
    static_assert(kTimingConfigWords == 41,
                  "field list below must match kTimingConfigWords");
}

TimingConfig
unpackTimingConfig(const uint32_t *in)
{
    TimingConfig cfg;
    size_t i = 0;
    auto get = [&]() { return in[i++]; };
    auto cache = [&](CacheConfig &c) {
        c.sizeBytes = get();
        c.ways = get();
        c.blockBytes = get();
        c.latency = get();
    };
    cfg.fetchQueue = get();
    cfg.decodeWidth = get();
    cfg.issueWidth = get();
    cfg.commitWidth = get();
    cfg.ruuSize = get();
    cfg.lsqSize = get();
    cache(cfg.l1i);
    cache(cfg.l1d);
    cache(cfg.l2);
    cfg.memFirstChunk = get();
    cfg.memInterChunk = get();
    cfg.tlbMissCycles = get();
    cfg.tlbEntries = get();
    cfg.pageBytes = get();
    cfg.bhtEntries = get();
    cfg.historyBits = get();
    cfg.btbEntries = get();
    cfg.mispredictPenalty = get();
    cfg.ipdsEnabled = get() != 0;
    cfg.bsvStackBits = get();
    cfg.bcvStackBits = get();
    cfg.batStackBits = get();
    cfg.tableLatency = get();
    cfg.batEntriesPerAccess = get();
    cfg.requestQueueSize = get();
    cfg.spillCyclesPer512 = get();
    cfg.requestRingCapacity = get();
    cfg.maxFrameDepth = get();
    cfg.inputCallInsts = get();
    cfg.outputCallInsts = get();
    cfg.stringCallInsts = get();
    cfg.builtinInstCost = get();
    return cfg;
}

void
encodeHeader(const TraceMeta &meta, uint8_t *out)
{
    for (size_t i = 0; i < 8; ++i)
        out[i] = kTraceMagic[i];
    putU32(out + 8, meta.version);
    putU32(out + 12, meta.flags);
    putU64(out + 16, meta.moduleHash);
    putU32(out + 24, meta.sessions);
    putU32(out + 28, meta.shards);
    putU32(out + 32, meta.hasTiming ? kTimingConfigWords : 0);
    putU32(out + 36, crc32(out, 36));
    if (meta.hasTiming) {
        uint32_t words[kTimingConfigWords];
        packTimingConfig(meta.timing, words);
        for (uint32_t i = 0; i < kTimingConfigWords; ++i)
            putU32(out + kHeaderBytes + 4 * i, words[i]);
    }
}

void
encodeIndexEntry(const ChunkIndexEntry &e, uint8_t *out)
{
    putU64(out, e.fileOffset);
    putU32(out + 8, e.payloadLen);
    putU32(out + 12, e.events);
    putU32(out + 16, e.session);
    putU32(out + 20, e.flags);
    putU64(out + 24, e.firstSeq);
    putU64(out + 32, e.endSeq);
}

ChunkIndexEntry
decodeIndexEntry(const uint8_t *p)
{
    ChunkIndexEntry e;
    e.fileOffset = getU64(p);
    e.payloadLen = getU32(p + 8);
    e.events = getU32(p + 12);
    e.session = getU32(p + 16);
    e.flags = getU32(p + 20);
    e.firstSeq = getU64(p + 24);
    e.endSeq = getU64(p + 32);
    return e;
}

void
appendIndexFooter(std::vector<uint8_t> &out,
                  const ChunkIndexEntry *entries, size_t count,
                  uint64_t footerFileOff)
{
    const size_t payloadLen = count * kIndexEntryBytes;
    const size_t base = out.size();
    out.resize(base + kChunkHeaderBytes + payloadLen +
               kIndexTrailerBytes);
    uint8_t *p = out.data() + base;
    putU32(p, static_cast<uint32_t>(payloadLen));
    putU32(p + 4, static_cast<uint32_t>(count));
    putU32(p + 8, kIndexSession);
    uint8_t *payload = p + kChunkHeaderBytes;
    for (size_t i = 0; i < count; ++i)
        encodeIndexEntry(entries[i], payload + i * kIndexEntryBytes);
    putU32(p + 12, crc32(payload, payloadLen));
    uint8_t *trailer = payload + payloadLen;
    for (size_t i = 0; i < 8; ++i)
        trailer[i] = kIndexTrailerMagic[i];
    putU64(trailer + 8, footerFileOff);
}

} // namespace replay
} // namespace ipds
