#include "replay/replay.h"

#include "support/diag.h"

namespace ipds {
namespace replay {

ReplayEngine::ReplayEngine(const TraceFile &f,
                           const CompiledProgram &p)
    : file_(&f), prog(p), meta_(f.meta())
{
    buildPcIndex();
}

ReplayEngine::ReplayEngine(const TraceMeta &m,
                           const CompiledProgram &p)
    : file_(nullptr), prog(p), meta_(m)
{
    buildPcIndex();
}

void
ReplayEngine::buildPcIndex()
{
    const Module &mod = prog.mod;
    if (meta_.moduleHash != moduleContentHash(mod))
        fatal("trace: recorded from a different program (module "
              "content hash mismatch) — re-record the trace");

    uint64_t lo = ~0ull;
    uint64_t hi = 0;
    for (const Function &fn : mod.functions)
        for (const BasicBlock &bb : fn.blocks)
            for (const Inst &in : bb.insts) {
                lo = std::min(lo, in.pc);
                hi = std::max(hi, in.pc);
            }
    if (lo > hi)
        fatal("trace: program has no instructions");
    basePc = lo;
    pcIndex.assign((hi - lo) / 4 + 1, {});
    for (const Function &fn : mod.functions)
        for (const BasicBlock &bb : fn.blocks)
            for (const Inst &in : bb.insts)
                pcIndex[(in.pc - basePc) / 4] = {&in, fn.id};
}

const ReplayEngine::PcEntry &
ReplayEngine::at(uint64_t pc) const
{
    uint64_t off = pc - basePc;
    if (pc < basePc || (off & 3) != 0 || off / 4 >= pcIndex.size() ||
        pcIndex[off / 4].inst == nullptr)
        fatal("trace: record references pc 0x%llx outside the module",
              static_cast<unsigned long long>(pc));
    return pcIndex[off / 4];
}

namespace {

bool
isMemOp(Op op)
{
    return op == Op::Load || op == Op::LoadInd || op == Op::Store ||
        op == Op::StoreInd;
}

} // namespace

ReplayEngine::ShardCursor::ShardCursor(const ReplayEngine &e,
                                       uint32_t shard)
    : eng(e), shard_(shard)
{
    const TraceMeta &m = eng.meta_;
    if (shard >= m.shards)
        fatal("replay: shard %u of %u", shard, m.shards);
    begin_ = static_cast<uint32_t>(uint64_t(shard) * m.sessions /
                                   m.shards);
    end_ = static_cast<uint32_t>(uint64_t(shard + 1) * m.sessions /
                                 m.shards);
    expectNext = begin_;
    if (m.hasTiming)
        cpu.emplace(m.timing);
}

ReplayEngine::ShardCursor::ShardCursor(const ReplayEngine &e,
                                       uint32_t begin_session,
                                       uint32_t end_session)
    : eng(e), shard_(0xFFFFFFFFu)
{
    const TraceMeta &m = eng.meta_;
    if (begin_session >= end_session || end_session > m.sessions)
        fatal("replay: session span [%u, %u) of %u", begin_session,
              end_session, m.sessions);
    begin_ = begin_session;
    end_ = end_session;
    expectNext = begin_;
    if (m.hasTiming)
        cpu.emplace(m.timing);
}

void
ReplayEngine::ShardCursor::resume(uint32_t session,
                                  const DetectorSnapshot &snap)
{
    if (finished)
        fatal("replay: resume() after finish()");
    if (cpu)
        fatal("replay: mid-session seek is not available for timing "
              "traces (the CPU scoreboard is not snapshotted) — use "
              "--seek-session");
    if (session < begin_ || session >= end_)
        fatal("replay: resume session %u outside span [%u, %u)",
              session, begin_, end_);
    if (open || expectNext != session)
        fatal("replay: resume session %u but cursor expects %u",
              session, expectNext);
    open = true;
    expectNext = session + 1;
    if (eng.meta_.detectorOn()) {
        if (!det)
            det.emplace(eng.prog);
        det->restoreState(snap);
    }
    funcStack.clear();
    funcStack.reserve(snap.activations.size());
    for (const auto &a : snap.activations)
        funcStack.push_back(a.func);
}

void
ReplayEngine::ShardCursor::feed(const ChunkRef &c,
                                const uint8_t *payload)
{
    if (finished)
        fatal("replay: feed() after finish()");
    if (c.session < begin_ || c.session >= end_)
        fatal("replay: chunk for session %u routed to shard %u "
              "[%u, %u)",
              c.session, shard_, begin_, end_);
    out.chunks++;
    out.bytes += kChunkHeaderBytes + c.payloadLen;
    out.events += c.events;

    const bool detOn = eng.meta_.detectorOn();
    TraceReader r(payload, c.payloadLen);
    uint64_t prevPc = 0;
    uint64_t prevAddr = 0;
    uint64_t remaining = c.events;
    auto take = [&](uint64_t k) {
        if (k > remaining)
            fatal("trace: chunk event count mismatch");
        remaining -= k;
    };
    auto requireOpen = [&] {
        if (!open)
            fatal("trace: event record outside a session");
    };

    while (!r.atEnd()) {
        switch (Tag t = r.tag(); t) {
          case Tag::SessionStart: {
            take(1);
            uint64_t idx = r.var();
            uint8_t ringFault = r.byte();
            uint32_t drop = 0;
            uint32_t dup = 0;
            uint64_t seed = 0;
            if (ringFault) {
                drop = static_cast<uint32_t>(r.var());
                dup = static_cast<uint32_t>(r.var());
                seed = r.var();
            }
            if (open)
                fatal("trace: SessionStart inside an open "
                      "session");
            if (idx != c.session || idx != expectNext)
                fatal("trace: session %llu out of order "
                      "(expected %u)",
                      static_cast<unsigned long long>(idx),
                      expectNext);
            open = true;
            expectNext = static_cast<uint32_t>(idx) + 1;
            if (detOn) {
                // One Detector per shard, reset() between
                // sessions (the pooled-frames fast path): replay
                // pays decode + detection per event, not a
                // detector rebuild per session.
                if (!det)
                    det.emplace(eng.prog);
                else
                    det->reset();
                if (cpu)
                    det->setRequestRing(&cpu->requestRing());
            }
            if (ringFault) {
                if (!cpu)
                    fatal("trace: ring-fault arming without a "
                          "timing model");
                cpu->requestRing().setFault(drop, dup, seed);
            }
            break;
          }
          case Tag::SessionEnd: {
            take(1);
            uint64_t steps = r.var();
            uint64_t inputEvents = r.var();
            uint64_t memTampers = r.var();
            uint64_t instructions = r.var();
            uint64_t blocks = r.var();
            uint64_t flushes = r.var();
            requireOpen();
            open = false;
            out.runs++;
            out.steps += steps;
            out.inputEvents += inputEvents;
            out.fault.memTampers += memTampers;
            out.vmInstructions += instructions;
            out.vmBlocks += blocks;
            out.vmFlushes += flushes;
            if (det) {
                out.det.merge(det->stats());
                out.alarms.insert(out.alarms.end(),
                                  det->alarms().begin(),
                                  det->alarms().end());
            }
            funcStack.clear();
            break;
          }
          case Tag::FuncEnter: {
            take(1);
            uint64_t f = r.var();
            requireOpen();
            if (f >= eng.prog.mod.functions.size())
                fatal("trace: function id %llu out of range",
                      static_cast<unsigned long long>(f));
            funcStack.push_back(static_cast<FuncId>(f));
            if (det)
                det->onFunctionEnter(static_cast<FuncId>(f));
            if (cpu)
                cpu->onFunctionEnter(static_cast<FuncId>(f));
            break;
          }
          case Tag::FuncExit: {
            take(1);
            uint64_t f = r.var();
            requireOpen();
            if (funcStack.empty() || funcStack.back() != f)
                fatal("trace: unbalanced function exit");
            funcStack.pop_back();
            if (det)
                det->onFunctionExit(static_cast<FuncId>(f));
            if (cpu)
                cpu->onFunctionExit(static_cast<FuncId>(f));
            break;
          }
          case Tag::BranchTaken:
          case Tag::BranchNotTaken: {
            take(1);
            uint64_t pc =
                prevPc + static_cast<uint64_t>(r.svar()) * 4;
            requireOpen();
            const PcEntry &e = eng.at(pc);
            if (e.inst->op != Op::Br)
                fatal("trace: branch record at non-branch pc");
            if (funcStack.empty() || funcStack.back() != e.func)
                fatal("trace: branch outside its function's "
                      "activation");
            bool taken = t == Tag::BranchTaken;
            if (det)
                det->onBranch(e.func, pc, taken);
            if (cpu) {
                cpu->onBranch(e.func, pc, taken);
                cpu->onInst(*e.inst, 0, 0, false);
            }
            prevPc = pc;
            break;
          }
          case Tag::Inst: {
            take(1);
            uint64_t pc =
                prevPc + static_cast<uint64_t>(r.svar()) * 4;
            requireOpen();
            const PcEntry &e = eng.at(pc);
            if (e.inst->op == Op::Br || isMemOp(e.inst->op))
                fatal("trace: plain record for a branch/memory "
                      "instruction");
            if (cpu)
                cpu->onInst(*e.inst, 0, 0, false);
            prevPc = pc;
            break;
          }
          case Tag::InstRun: {
            uint64_t n = r.var();
            take(n); // also rejects absurd counts up front
            requireOpen();
            for (uint64_t i = 0; i < n; i++) {
                uint64_t pc = prevPc + 4;
                const PcEntry &e = eng.at(pc);
                if (e.inst->op == Op::Br || isMemOp(e.inst->op))
                    fatal("trace: plain record for a "
                          "branch/memory instruction");
                if (cpu)
                    cpu->onInst(*e.inst, 0, 0, false);
                prevPc = pc;
            }
            break;
          }
          case Tag::MemInst: {
            take(1);
            uint64_t pc =
                prevPc + static_cast<uint64_t>(r.svar()) * 4;
            uint64_t addr =
                prevAddr + static_cast<uint64_t>(r.svar());
            requireOpen();
            const PcEntry &e = eng.at(pc);
            if (!isMemOp(e.inst->op))
                fatal("trace: data-access record at a "
                      "non-memory instruction");
            if (cpu)
                cpu->onInst(
                    *e.inst, addr,
                    static_cast<uint32_t>(e.inst->size),
                    e.inst->op == Op::Load ||
                        e.inst->op == Op::LoadInd);
            prevPc = pc;
            prevAddr = addr;
            break;
          }
          case Tag::BsvFlip: {
            take(1);
            uint64_t slot = r.var();
            uint8_t state = r.byte();
            requireOpen();
            if (state > 2)
                fatal("trace: bad BSV state %u", state);
            if (det &&
                det->injectBsvState(
                    static_cast<uint32_t>(slot),
                    static_cast<BsvState>(state)))
                out.fault.bsvFlips++;
            break;
          }
          case Tag::CtxSwitch: {
            take(1);
            uint8_t lazy = r.byte();
            requireOpen();
            if (!cpu)
                fatal("trace: context switch without a timing "
                      "model");
            cpu->contextSwitch(lazy != 0);
            out.fault.ctxSwitches++;
            break;
          }
          case Tag::Snapshot: {
            // Resume metadata, not an event: sequential replay and
            // parallel spans that already cover the prefix skip the
            // blob (counted — ipds.replay.snapshots_written must
            // round-trip); only the seek path decodes one.
            if (eng.meta_.version < 2)
                fatal("trace: snapshot record in a v%u trace",
                      eng.meta_.version);
            requireOpen();
            uint64_t len = r.var();
            r.skip(static_cast<size_t>(len));
            out.snapshots++;
            break;
          }
        }
    }
    if (remaining != 0)
        fatal("trace: chunk event count mismatch");
}

void
ReplayEngine::ShardCursor::finish()
{
    if (finished)
        fatal("replay: finish() called twice");
    finished = true;
    if (open)
        fatal("trace: truncated (a session has no end record)");
    if (out.runs != end_ - begin_)
        fatal("trace: shard %u replayed %llu of %u sessions", shard_,
              static_cast<unsigned long long>(out.runs),
              end_ - begin_);

    if (cpu) {
        out.tim = cpu->stats();
        if (eng.meta_.faultCaptured()) {
            out.fault.ringDrops = cpu->requestRing().faultDropCount();
            out.fault.ringDups = cpu->requestRing().faultDupCount();
        }
    }
}

void
ReplayEngine::replayShard(uint32_t shard, ReplayShardResult &out) const
{
    if (!file_)
        fatal("replay: replayShard on a streaming engine");
    ShardCursor cur(*this, shard);
    for (const ChunkRef &c : file_->chunks()) {
        if (c.session < cur.begin() || c.session >= cur.end())
            continue;
        if (file_->crcDeferred())
            file_->checkChunkCrc(c);
        cur.feed(c, file_->payload(c));
    }
    cur.finish();
    out = std::move(cur.result());
}

void
ReplayEngine::replayChunkRange(size_t chunkBegin, size_t chunkEnd,
                               uint32_t begin_session,
                               uint32_t end_session,
                               ReplayShardResult &out) const
{
    if (!file_)
        fatal("replay: replayChunkRange on a streaming engine");
    ShardCursor cur(*this, begin_session, end_session);
    const std::vector<ChunkRef> &chunks = file_->chunks();
    if (chunkEnd > chunks.size())
        chunkEnd = chunks.size();
    for (size_t i = chunkBegin; i < chunkEnd; ++i) {
        const ChunkRef &c = chunks[i];
        if (c.session < begin_session || c.session >= end_session)
            continue;
        if (file_->crcDeferred())
            file_->checkChunkCrc(c);
        cur.feed(c, file_->payload(c));
    }
    cur.finish();
    out = std::move(cur.result());
}

} // namespace replay
} // namespace ipds
