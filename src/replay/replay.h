#ifndef IPDS_REPLAY_REPLAY_H
#define IPDS_REPLAY_REPLAY_H

/**
 * @file
 * ReplayEngine: re-detect (and re-time) a recorded trace with no VM in
 * the loop.
 *
 * The engine decodes chunk records back into the per-event observer
 * calls the live run delivered — Detector::onFunctionEnter/Exit/
 * onBranch, CpuModel::onBranch/onInst — against the SAME concrete
 * classes, so alarms, DetectorStats and TimingStats come out
 * bit-identical to the capture run (per-event and batched delivery are
 * already held bit-identical by the vm-diff suite). Out-of-band fault
 * records (BSV flips, context-switch storms, ring-fault arming) are
 * applied at their recorded commit points, so a tamper recorded into a
 * trace is detected identically on replay.
 *
 * Sharding reuses the live partition: the trace header carries the
 * capture's (sessions, shards), each replay shard owns a CpuModel and
 * per-session Detectors over session range [s*S/K, (s+1)*S/K), and
 * chunk framing guarantees a chunk never spans sessions, so shards
 * split the file at chunk boundaries. Results merge in shard order —
 * deterministic for any worker-thread count, like the Session facade.
 *
 * Defensive decoding: the engine validates every PC against the
 * module's instruction index, every function id, and its own shadow
 * call stack BEFORE forwarding to the detector, so a corrupt-but-
 * CRC-valid trace raises FatalError instead of tripping the
 * detector's internal panics.
 */

#include <cstdint>
#include <vector>

#include "core/program.h"
#include "inject/fault.h"
#include "ipds/detector.h"
#include "replay/reader.h"
#include "timing/cpu.h"

namespace ipds {
namespace replay {

/** Everything one replay shard reproduces (plus replay-side meters). */
struct ReplayShardResult
{
    DetectorStats det;
    TimingStats tim;
    FaultStats fault;
    std::vector<Alarm> alarms;

    // Session counters replayed from SessionEnd records.
    uint64_t runs = 0;
    uint64_t steps = 0;
    uint64_t inputEvents = 0;
    uint64_t vmInstructions = 0;
    uint64_t vmBlocks = 0;
    uint64_t vmFlushes = 0;

    // Replay-side meters (ipds.replay.*).
    uint64_t chunks = 0;
    uint64_t bytes = 0;
    uint64_t events = 0;
};

class ReplayEngine
{
  public:
    /**
     * @p file and @p prog must outlive the engine. Throws FatalError
     * if the trace was recorded from a different program (module
     * content-hash mismatch).
     */
    ReplayEngine(const TraceFile &file, const CompiledProgram &prog);

    /** Session/shard geometry recorded at capture time. */
    uint32_t sessions() const { return file.meta().sessions; }
    uint32_t shards() const { return file.meta().shards; }

    /**
     * Replay shard @p shard (sessions [shard*S/K, (shard+1)*S/K))
     * into @p out. Const and self-contained: shards replay
     * concurrently. Throws FatalError on malformed records.
     */
    void replayShard(uint32_t shard, ReplayShardResult &out) const;

  private:
    struct PcEntry
    {
        const Inst *inst = nullptr;
        FuncId func = kNoFunc;
    };

    /** Decoded instruction at @p pc; FatalError if out of range. */
    const PcEntry &at(uint64_t pc) const;

    const TraceFile &file;
    const CompiledProgram &prog;
    /** Flat (pc - basePc) / 4 index over every instruction. */
    std::vector<PcEntry> pcIndex;
    uint64_t basePc = 0;
};

} // namespace replay
} // namespace ipds

#endif // IPDS_REPLAY_REPLAY_H
