#ifndef IPDS_REPLAY_REPLAY_H
#define IPDS_REPLAY_REPLAY_H

/**
 * @file
 * ReplayEngine: re-detect (and re-time) a recorded trace with no VM in
 * the loop.
 *
 * The engine decodes chunk records back into the per-event observer
 * calls the live run delivered — Detector::onFunctionEnter/Exit/
 * onBranch, CpuModel::onBranch/onInst — against the SAME concrete
 * classes, so alarms, DetectorStats and TimingStats come out
 * bit-identical to the capture run (per-event and batched delivery are
 * already held bit-identical by the vm-diff suite). Out-of-band fault
 * records (BSV flips, context-switch storms, ring-fault arming) are
 * applied at their recorded commit points, so a tamper recorded into a
 * trace is detected identically on replay.
 *
 * Sharding reuses the live partition: the trace header carries the
 * capture's (sessions, shards), each replay shard owns a CpuModel and
 * per-session Detectors over session range [s*S/K, (s+1)*S/K), and
 * chunk framing guarantees a chunk never spans sessions, so shards
 * split the file at chunk boundaries. Results merge in shard order —
 * deterministic for any worker-thread count, like the Session facade.
 *
 * The decode loop lives in ShardCursor, a push-style consumer fed one
 * chunk at a time. Offline replayShard() iterates a loaded TraceFile
 * into a cursor; the detection service (src/serve) feeds the same
 * cursor from socket bytes as they arrive — one decode loop, so
 * ingest-time detection is bit-identical to offline replay by
 * construction, not by parallel maintenance.
 *
 * Defensive decoding: the engine validates every PC against the
 * module's instruction index, every function id, and its own shadow
 * call stack BEFORE forwarding to the detector, so a corrupt-but-
 * CRC-valid trace raises FatalError instead of tripping the
 * detector's internal panics.
 */

#include <cstdint>
#include <optional>
#include <vector>

#include "core/program.h"
#include "inject/fault.h"
#include "ipds/detector.h"
#include "replay/reader.h"
#include "timing/cpu.h"

namespace ipds {
namespace replay {

/** Everything one replay shard reproduces (plus replay-side meters). */
struct ReplayShardResult
{
    DetectorStats det;
    TimingStats tim;
    FaultStats fault;
    std::vector<Alarm> alarms;

    // Session counters replayed from SessionEnd records.
    uint64_t runs = 0;
    uint64_t steps = 0;
    uint64_t inputEvents = 0;
    uint64_t vmInstructions = 0;
    uint64_t vmBlocks = 0;
    uint64_t vmFlushes = 0;

    // Replay-side meters (ipds.replay.*).
    uint64_t chunks = 0;
    uint64_t bytes = 0;
    uint64_t events = 0;
    uint64_t snapshots = 0; ///< Tag::Snapshot records seen
};

class ReplayEngine
{
  public:
    /**
     * @p file and @p prog must outlive the engine. Throws FatalError
     * if the trace was recorded from a different program (module
     * content-hash mismatch).
     */
    ReplayEngine(const TraceFile &file, const CompiledProgram &prog);

    /**
     * Streaming variant: geometry and flags come from an
     * already-parsed header, chunks arrive later through
     * ShardCursor::feed(). @p prog must outlive the engine; @p meta
     * is copied. Same module content-hash check as the file ctor.
     */
    ReplayEngine(const TraceMeta &meta, const CompiledProgram &prog);

    /** Session/shard geometry recorded at capture time. */
    uint32_t sessions() const { return meta_.sessions; }
    uint32_t shards() const { return meta_.shards; }
    const TraceMeta &meta() const { return meta_; }

    /**
     * Replay shard @p shard (sessions [shard*S/K, (shard+1)*S/K))
     * into @p out. Const and self-contained: shards replay
     * concurrently. Throws FatalError on malformed records. Requires
     * the TraceFile ctor (streaming engines use ShardCursor).
     */
    void replayShard(uint32_t shard, ReplayShardResult &out) const;

    /**
     * Replay chunks [chunkBegin, chunkEnd) of the loaded file that
     * belong to sessions [begin_session, end_session) into @p out —
     * the parallel-mode work unit. Chunk payload CRCs deferred by an
     * indexed load are verified here, inside the worker's span, so
     * integrity checking parallelizes with decoding. Const and
     * self-contained: ranges replay concurrently.
     */
    void replayChunkRange(size_t chunkBegin, size_t chunkEnd,
                          uint32_t begin_session,
                          uint32_t end_session,
                          ReplayShardResult &out) const;

    /**
     * Push-style decoder for one shard: feed() chunks in file order,
     * then finish() once. The chunk-iteration body of replayShard()
     * and the service's ingest actors are the same code path. Holds a
     * reference to the engine; not movable across the engine's
     * lifetime. Throws FatalError on malformed records — after a
     * throw the cursor is poisoned and must be discarded.
     */
    class ShardCursor
    {
      public:
        ShardCursor(const ReplayEngine &eng, uint32_t shard);

        /**
         * Span mode: own sessions [begin_session, end_session)
         * directly instead of a capture shard's partition (parallel
         * work units, --seek-session).
         */
        ShardCursor(const ReplayEngine &eng, uint32_t begin_session,
                    uint32_t end_session);

        /** First / one-past-last session this shard owns. */
        uint32_t begin() const { return begin_; }
        uint32_t end() const { return end_; }

        /**
         * Prime the cursor to resume session @p session mid-stream
         * from @p snap (--seek-chunk): the session is opened as if
         * its prefix had been fed, the detector state is restored,
         * and the next feed() may start at any chunk of @p session —
         * typically the snapshot-flagged chunk @p snap was read from.
         * FatalError for timing traces (the CpuModel scoreboard is
         * not part of the snapshot) or when events for @p session
         * were already fed.
         */
        void resume(uint32_t session, const DetectorSnapshot &snap);

        /**
         * Decode one chunk. @p payload points at c.payloadLen bytes
         * (CRC already verified by the framing layer); the chunk's
         * session must be in [begin(), end()) and arrive in
         * non-decreasing session order.
         */
        void feed(const ChunkRef &c, const uint8_t *payload);

        /**
         * Seal the shard: verifies every owned session ran to its
         * end record and harvests timing/fault stats into result().
         */
        void finish();

        ReplayShardResult &result() { return out; }
        const ReplayShardResult &result() const { return out; }

      private:
        const ReplayEngine &eng;
        uint32_t shard_;
        uint32_t begin_;
        uint32_t end_;
        std::optional<CpuModel> cpu;
        std::optional<Detector> det;
        // Shadow call stack: validated BEFORE the detector sees an
        // event, so corrupt-but-CRC-valid traces fail with FatalError
        // instead of tripping the detector's internal invariants.
        std::vector<FuncId> funcStack;
        bool open = false;
        bool finished = false;
        uint32_t expectNext;
        ReplayShardResult out;
    };

  private:
    struct PcEntry
    {
        const Inst *inst = nullptr;
        FuncId func = kNoFunc;
    };

    /** Decoded instruction at @p pc; FatalError if out of range. */
    const PcEntry &at(uint64_t pc) const;

    void buildPcIndex();

    const TraceFile *file_; ///< null for streaming engines
    const CompiledProgram &prog;
    TraceMeta meta_;
    /** Flat (pc - basePc) / 4 index over every instruction. */
    std::vector<PcEntry> pcIndex;
    uint64_t basePc = 0;
};

} // namespace replay
} // namespace ipds

#endif // IPDS_REPLAY_REPLAY_H
