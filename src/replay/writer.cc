#include "replay/writer.h"

namespace ipds {
namespace replay {

TraceWriter::TraceWriter(std::ostream &o, Mode mode)
    : out(o), md(mode)
{
    payload.reserve(kChunkPayloadCap + 64);
}

void
TraceWriter::putVar(uint64_t v)
{
    while (v >= 0x80) {
        payload.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    payload.push_back(static_cast<uint8_t>(v));
}

void
TraceWriter::flushRun()
{
    if (pendingRun == 0)
        return;
    uint32_t n = pendingRun;
    pendingRun = 0;
    tag(Tag::InstRun);
    putVar(n);
    chunkEvents += n;
    eventsOut += n;
}

void
TraceWriter::flushChunk()
{
    flushRun();
    if (payload.empty())
        return;
    ChunkIndexEntry e;
    e.fileOffset = bytesOut; // stream-relative; Session rebases
    e.payloadLen = static_cast<uint32_t>(payload.size());
    e.events = chunkEvents;
    e.session = curSession;
    e.flags = chunkStartsWithSnap ? kChunkHasSnapshot : 0;
    e.firstSeq = sessSeq;
    e.endSeq = sessSeq + chunkEvents;
    entries_.push_back(e);
    sessSeq += chunkEvents;
    uint8_t hdr[kChunkHeaderBytes];
    putU32(hdr, static_cast<uint32_t>(payload.size()));
    putU32(hdr + 4, chunkEvents);
    putU32(hdr + 8, curSession);
    putU32(hdr + 12, crc32(payload.data(), payload.size()));
    out.write(reinterpret_cast<const char *>(hdr), sizeof hdr);
    out.write(reinterpret_cast<const char *>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    bytesOut += sizeof hdr + payload.size();
    chunksOut++;
    chunksSinceSnap++;
    chunkStartsWithSnap = false;
    payload.clear();
    chunkEvents = 0;
    prevPc = 0;
    prevAddr = 0;
}

void
TraceWriter::sealRecord(uint32_t events_in_record)
{
    chunkEvents += events_in_record;
    eventsOut += events_in_record;
    if (payload.size() >= kChunkPayloadCap)
        flushChunk();
}

void
TraceWriter::setSnapshotProvider(
    std::function<void(std::vector<uint8_t> &)> provider)
{
    snapProvider = std::move(provider);
}

void
TraceWriter::maybeSnapshot()
{
    if (!snapProvider || snapEvery == 0 || !sessOpen ||
        chunksSinceSnap < snapEvery)
        return;
    flushChunk();
    std::vector<uint8_t> blob;
    snapProvider(blob);
    if (blob.empty())
        return;
    chunkStartsWithSnap = true;
    tag(Tag::Snapshot);
    putVar(blob.size());
    payload.insert(payload.end(), blob.begin(), blob.end());
    // Snapshots are resume metadata, not events: the record does not
    // advance the session event sequence.
    sealRecord(0);
    chunksSinceSnap = 0;
    snapsOut++;
}

void
TraceWriter::beginSession(uint32_t index)
{
    flushChunk();
    curSession = index;
    sessSeq = 0;
    chunksSinceSnap = 0;
    sessOpen = true;
    tag(Tag::SessionStart);
    putVar(index);
    payload.push_back(0);
    sealRecord();
}

void
TraceWriter::beginSession(uint32_t index, uint32_t drop_permille,
                          uint32_t dup_permille, uint64_t ring_seed)
{
    flushChunk();
    curSession = index;
    sessSeq = 0;
    chunksSinceSnap = 0;
    sessOpen = true;
    tag(Tag::SessionStart);
    putVar(index);
    payload.push_back(1);
    putVar(drop_permille);
    putVar(dup_permille);
    putVar(ring_seed);
    sealRecord();
}

void
TraceWriter::endSession(uint64_t steps, uint64_t input_events,
                        uint64_t mem_tampers, uint64_t instructions,
                        uint64_t blocks, uint64_t batch_flushes)
{
    flushRun();
    tag(Tag::SessionEnd);
    putVar(steps);
    putVar(input_events);
    putVar(mem_tampers);
    putVar(instructions);
    putVar(blocks);
    putVar(batch_flushes);
    sealRecord();
    sessOpen = false;
    flushChunk();
}

void
TraceWriter::finish()
{
    flushChunk();
}

void
TraceWriter::onFunctionEnter(FuncId f)
{
    flushRun();
    tag(Tag::FuncEnter);
    putVar(f);
    sealRecord();
    maybeSnapshot();
}

void
TraceWriter::onFunctionExit(FuncId f)
{
    flushRun();
    tag(Tag::FuncExit);
    putVar(f);
    sealRecord();
    maybeSnapshot();
}

void
TraceWriter::onBranch(FuncId, uint64_t pc, bool taken)
{
    flushRun();
    tag(taken ? Tag::BranchTaken : Tag::BranchNotTaken);
    putSvar(static_cast<int64_t>(pc - prevPc) / 4);
    prevPc = pc;
    sealRecord();
}

void
TraceWriter::onInst(const Inst &in, uint64_t mem_addr,
                    uint32_t mem_size, bool)
{
    if (md != Mode::Full)
        return;
    if (in.op == Op::Br)
        return; // the branch record already carries this commit
    if (mem_size != 0) {
        flushRun();
        tag(Tag::MemInst);
        putSvar(static_cast<int64_t>(in.pc - prevPc) / 4);
        putSvar(static_cast<int64_t>(mem_addr - prevAddr));
        prevPc = in.pc;
        prevAddr = mem_addr;
        sealRecord();
        return;
    }
    if (in.pc == prevPc + 4) {
        // Sequential commit: extend the pending run, one event, zero
        // bytes until something breaks the run.
        pendingRun++;
        prevPc = in.pc;
        return;
    }
    flushRun();
    tag(Tag::Inst);
    putSvar(static_cast<int64_t>(in.pc - prevPc) / 4);
    prevPc = in.pc;
    sealRecord();
}

void
TraceWriter::onBsvFlip(uint32_t slot, BsvState s)
{
    flushRun();
    tag(Tag::BsvFlip);
    putVar(slot);
    payload.push_back(static_cast<uint8_t>(s));
    sealRecord();
}

void
TraceWriter::onCtxSwitch(bool lazy)
{
    flushRun();
    tag(Tag::CtxSwitch);
    payload.push_back(lazy ? 1 : 0);
    sealRecord();
}

} // namespace replay
} // namespace ipds
