#include "replay/reader.h"

#include <cstring>
#include <fstream>

#include "support/diag.h"

namespace ipds {
namespace replay {

namespace {

std::vector<uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("trace: cannot open '%s'", path.c_str());
    std::vector<uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (in.bad())
        fatal("trace: read error on '%s'", path.c_str());
    return bytes;
}

/** Record a defect: tally it in @p issues or throw. */
void
defect(ValidateResult *issues, uint64_t *tally, const char *msg,
       size_t where)
{
    if (!issues)
        fatal("trace: %s (at byte %zu)", msg, where);
    if (tally)
        (*tally)++;
    if (issues->error.empty())
        issues->error = strprintf("%s (at byte %zu)", msg, where);
}

} // namespace

void
TraceFile::parse(ValidateResult *issues)
{
    const uint8_t *b = bytes_.data();
    const size_t n = bytes_.size();

    if (n < kHeaderBytes ||
        std::memcmp(b, kTraceMagic, sizeof kTraceMagic) != 0) {
        defect(issues, nullptr, "not an IPDS trace (bad magic)", 0);
        return;
    }
    meta_.version = getU32(b + 8);
    if (meta_.version != kTraceVersion) {
        if (!issues)
            fatal("trace: format version %u, this build reads "
                  "version %u — re-record the trace",
                  meta_.version, kTraceVersion);
        issues->versionMismatches++;
        if (issues->error.empty())
            issues->error = strprintf(
                "format version %u, expected %u", meta_.version,
                kTraceVersion);
        return;
    }
    uint32_t hdrCrc = getU32(b + 36);
    if (crc32(b, 36) != hdrCrc) {
        defect(issues, issues ? &issues->crcFailures : nullptr,
               "header CRC mismatch", 36);
        return;
    }
    meta_.flags = getU32(b + 12);
    meta_.moduleHash = getU64(b + 16);
    meta_.sessions = getU32(b + 24);
    meta_.shards = getU32(b + 28);
    uint32_t timingWords = getU32(b + 32);
    if (timingWords != 0 && timingWords != kTimingConfigWords) {
        defect(issues, nullptr, "bad timing block size", 32);
        return;
    }
    if (meta_.sessions == 0 || meta_.shards == 0 ||
        meta_.shards > meta_.sessions) {
        defect(issues, nullptr, "impossible session/shard counts", 24);
        return;
    }
    meta_.hasTiming = timingWords != 0;
    size_t off = kHeaderBytes;
    if (meta_.hasTiming) {
        if (n < off + 4 * kTimingConfigWords) {
            defect(issues, nullptr, "truncated timing block", off);
            return;
        }
        uint32_t words[kTimingConfigWords];
        for (uint32_t i = 0; i < kTimingConfigWords; ++i)
            words[i] = getU32(b + off + 4 * i);
        meta_.timing = unpackTimingConfig(words);
        off += 4 * kTimingConfigWords;
    }

    uint32_t prevSession = 0;
    bool first = true;
    while (off < n) {
        if (n - off < kChunkHeaderBytes) {
            defect(issues, nullptr, "truncated chunk header", off);
            return;
        }
        ChunkRef c;
        c.payloadLen = getU32(b + off);
        c.events = getU32(b + off + 4);
        c.session = getU32(b + off + 8);
        uint32_t crc = getU32(b + off + 12);
        if (c.payloadLen == 0 || n - off - kChunkHeaderBytes <
            c.payloadLen) {
            defect(issues, nullptr, "truncated chunk payload", off);
            return;
        }
        c.payloadOff = off + kChunkHeaderBytes;
        off = c.payloadOff + c.payloadLen;
        if (c.session >= meta_.sessions ||
            (!first && c.session < prevSession)) {
            defect(issues, nullptr, "chunk session out of order", off);
            return;
        }
        prevSession = c.session;
        first = false;
        if (crc32(b + c.payloadOff, c.payloadLen) != crc) {
            defect(issues, issues ? &issues->crcFailures : nullptr,
                   "chunk CRC mismatch", c.payloadOff);
            continue; // tally mode: skip the corrupt chunk
        }
        index.push_back(c);
    }
    if (index.empty())
        defect(issues, nullptr, "trace has no chunks", n);
}

TraceFile
TraceFile::fromBytes(std::vector<uint8_t> bytes)
{
    TraceFile f;
    f.bytes_ = std::move(bytes);
    f.parse(nullptr);
    return f;
}

TraceFile
TraceFile::load(const std::string &path)
{
    return fromBytes(readFile(path));
}

ValidateResult
TraceFile::validateBytes(const std::vector<uint8_t> &b)
{
    TraceFile f;
    f.bytes_ = b;
    ValidateResult r;
    f.parse(&r);
    r.ok = r.error.empty();
    return r;
}

ValidateResult
TraceFile::validate(const std::string &path)
{
    try {
        return validateBytes(readFile(path));
    } catch (const FatalError &e) {
        ValidateResult r;
        r.error = e.what();
        return r;
    }
}

Tag
TraceReader::tag()
{
    uint8_t t = byte();
    if (t < static_cast<uint8_t>(Tag::FuncEnter) ||
        t > static_cast<uint8_t>(Tag::SessionEnd))
        fatal("trace: unknown record tag %u (at payload byte %zu)", t,
              off - 1);
    return static_cast<Tag>(t);
}

uint64_t
TraceReader::var()
{
    uint64_t v = 0;
    uint32_t shift = 0;
    for (;;) {
        if (off == n_)
            truncated();
        uint8_t byte = p_[off++];
        if (shift >= 64 || (shift == 63 && (byte & 0x7e) != 0))
            fatal("trace: varint overflow (at payload byte %zu)", off);
        v |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0)
            return v;
        shift += 7;
    }
}

uint8_t
TraceReader::byte()
{
    if (off == n_)
        truncated();
    return p_[off++];
}

void
TraceReader::truncated() const
{
    fatal("trace: record truncated (at payload byte %zu)", off);
}

} // namespace replay
} // namespace ipds
