#include "replay/reader.h"

#include <cstring>
#include <fstream>

#include "support/diag.h"

namespace ipds {
namespace replay {

namespace {

std::vector<uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("trace: cannot open '%s'", path.c_str());
    std::vector<uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (in.bad())
        fatal("trace: read error on '%s'", path.c_str());
    return bytes;
}

/** Record a defect: tally it in @p issues or throw. */
void
defect(ValidateResult *issues, uint64_t *tally, const char *msg,
       size_t where)
{
    if (!issues)
        fatal("trace: %s (at byte %zu)", msg, where);
    if (tally)
        (*tally)++;
    if (issues->error.empty())
        issues->error = strprintf("%s (at byte %zu)", msg, where);
}

/** Set *err (when non-null) to @p msg, and @p at to the defect byte. */
ParseStatus
parseFail(ParseStatus st, std::string *err, const char *msg,
          size_t &at, size_t where)
{
    if (err)
        *err = msg;
    at = where;
    return st;
}

} // namespace

ParseStatus
parseHeader(const uint8_t *p, size_t n, TraceMeta &meta,
            size_t &consumed, std::string *err)
{
    size_t have = n < sizeof kTraceMagic ? n : sizeof kTraceMagic;
    if (std::memcmp(p, kTraceMagic, have) != 0)
        return parseFail(ParseStatus::Malformed, err,
                        "not an IPDS trace (bad magic)", consumed, 0);
    if (n < kHeaderBytes)
        return parseFail(ParseStatus::NeedMore, err,
                        "truncated trace header", consumed, 0);
    meta.version = getU32(p + 8);
    if (meta.version != kTraceVersion) {
        if (err)
            *err = strprintf("format version %u, expected %u",
                             meta.version, kTraceVersion);
        consumed = 8;
        return ParseStatus::VersionSkew;
    }
    uint32_t hdrCrc = getU32(p + 36);
    if (crc32(p, 36) != hdrCrc)
        return parseFail(ParseStatus::ChunkCrcMismatch, err,
                        "header CRC mismatch", consumed, 36);
    meta.flags = getU32(p + 12);
    meta.moduleHash = getU64(p + 16);
    meta.sessions = getU32(p + 24);
    meta.shards = getU32(p + 28);
    uint32_t timingWords = getU32(p + 32);
    if (timingWords != 0 && timingWords != kTimingConfigWords)
        return parseFail(ParseStatus::Malformed, err,
                        "bad timing block size", consumed, 32);
    if (meta.sessions == 0 || meta.shards == 0 ||
        meta.shards > meta.sessions)
        return parseFail(ParseStatus::Malformed, err,
                        "impossible session/shard counts", consumed,
                        24);
    meta.hasTiming = timingWords != 0;
    size_t off = kHeaderBytes;
    if (meta.hasTiming) {
        if (n < off + 4 * kTimingConfigWords)
            return parseFail(ParseStatus::NeedMore, err,
                            "truncated timing block", consumed, off);
        uint32_t words[kTimingConfigWords];
        for (uint32_t i = 0; i < kTimingConfigWords; ++i)
            words[i] = getU32(p + off + 4 * i);
        meta.timing = unpackTimingConfig(words);
        off += 4 * kTimingConfigWords;
    }
    consumed = off;
    return ParseStatus::Ok;
}

ParseStatus
parseChunk(const uint8_t *p, size_t n, ChunkRef &out,
           size_t &consumed, std::string *err)
{
    if (n < kChunkHeaderBytes)
        return parseFail(ParseStatus::NeedMore, err,
                        "truncated chunk header", consumed, 0);
    out.payloadLen = getU32(p);
    out.events = getU32(p + 4);
    out.session = getU32(p + 8);
    uint32_t crc = getU32(p + 12);
    // A corrupt length must not make a streamed ingest wait forever
    // for bytes that will never come: writers cap payloads at
    // kChunkPayloadCap, so anything far past it is Malformed, not
    // NeedMore.
    if (out.payloadLen == 0 || out.payloadLen > 4 * kChunkPayloadCap)
        return parseFail(ParseStatus::Malformed, err,
                        "impossible chunk payload length", consumed,
                        0);
    if (n - kChunkHeaderBytes < out.payloadLen)
        return parseFail(ParseStatus::NeedMore, err,
                        "truncated chunk payload", consumed, 0);
    out.payloadOff = kChunkHeaderBytes;
    if (crc32(p + kChunkHeaderBytes, out.payloadLen) != crc)
        return parseFail(ParseStatus::ChunkCrcMismatch, err,
                        "chunk CRC mismatch", consumed,
                        kChunkHeaderBytes);
    consumed = kChunkHeaderBytes + out.payloadLen;
    return ParseStatus::Ok;
}

void
TraceFile::parse(ValidateResult *issues)
{
    const uint8_t *b = bytes_.data();
    const size_t n = bytes_.size();

    std::string err;
    size_t at = 0;
    switch (parseHeader(b, n, meta_, at, &err)) {
      case ParseStatus::Ok:
        break;
      case ParseStatus::NeedMore:
        defect(issues, issues ? &issues->truncatedChunks : nullptr,
               err.c_str(), at);
        return;
      case ParseStatus::ChunkCrcMismatch:
        defect(issues, issues ? &issues->crcFailures : nullptr,
               err.c_str(), at);
        return;
      case ParseStatus::VersionSkew:
        if (!issues)
            fatal("trace: format version %u, this build reads "
                  "version %u — re-record the trace",
                  meta_.version, kTraceVersion);
        issues->versionMismatches++;
        if (issues->error.empty())
            issues->error = err;
        return;
      case ParseStatus::Malformed:
        defect(issues, nullptr, err.c_str(), at);
        return;
    }
    size_t off = at;

    uint32_t prevSession = 0;
    bool first = true;
    while (off < n) {
        ChunkRef c;
        size_t used = 0;
        ParseStatus st = parseChunk(b + off, n - off, c, used, &err);
        if (st == ParseStatus::NeedMore) {
            defect(issues,
                   issues ? &issues->truncatedChunks : nullptr,
                   err.c_str(), off + used);
            return;
        }
        if (st == ParseStatus::Malformed) {
            defect(issues, nullptr, err.c_str(), off + used);
            return;
        }
        size_t payloadOff = off + kChunkHeaderBytes;
        off = payloadOff + c.payloadLen;
        if (c.session >= meta_.sessions ||
            (!first && c.session < prevSession)) {
            defect(issues, nullptr, "chunk session out of order", off);
            return;
        }
        prevSession = c.session;
        first = false;
        if (st == ParseStatus::ChunkCrcMismatch) {
            defect(issues, issues ? &issues->crcFailures : nullptr,
                   err.c_str(), payloadOff);
            continue; // tally mode: skip the corrupt chunk
        }
        c.payloadOff = payloadOff; // rebase from parse window to file
        index.push_back(c);
    }
    if (index.empty())
        defect(issues, nullptr, "trace has no chunks", n);
}

TraceFile
TraceFile::fromBytes(std::vector<uint8_t> bytes)
{
    TraceFile f;
    f.bytes_ = std::move(bytes);
    f.parse(nullptr);
    return f;
}

TraceFile
TraceFile::load(const std::string &path)
{
    return fromBytes(readFile(path));
}

ValidateResult
TraceFile::validateBytes(const std::vector<uint8_t> &b)
{
    TraceFile f;
    f.bytes_ = b;
    ValidateResult r;
    f.parse(&r);
    r.ok = r.error.empty();
    return r;
}

ValidateResult
TraceFile::validate(const std::string &path)
{
    try {
        return validateBytes(readFile(path));
    } catch (const FatalError &e) {
        ValidateResult r;
        r.error = e.what();
        return r;
    }
}

Tag
TraceReader::tag()
{
    uint8_t t = byte();
    if (t < static_cast<uint8_t>(Tag::FuncEnter) ||
        t > static_cast<uint8_t>(Tag::SessionEnd))
        fatal("trace: unknown record tag %u (at payload byte %zu)", t,
              off - 1);
    return static_cast<Tag>(t);
}

uint64_t
TraceReader::var()
{
    uint64_t v = 0;
    uint32_t shift = 0;
    for (;;) {
        if (off == n_)
            truncated();
        uint8_t byte = p_[off++];
        if (shift >= 64 || (shift == 63 && (byte & 0x7e) != 0))
            fatal("trace: varint overflow (at payload byte %zu)", off);
        v |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0)
            return v;
        shift += 7;
    }
}

uint8_t
TraceReader::byte()
{
    if (off == n_)
        truncated();
    return p_[off++];
}

void
TraceReader::truncated() const
{
    fatal("trace: record truncated (at payload byte %zu)", off);
}

} // namespace replay
} // namespace ipds
