#include "replay/reader.h"

#include <cstring>
#include <fstream>

#include "support/diag.h"

namespace ipds {
namespace replay {

namespace {

std::vector<uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("trace: cannot open '%s'", path.c_str());
    std::vector<uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (in.bad())
        fatal("trace: read error on '%s'", path.c_str());
    return bytes;
}

/** Record a defect: tally it in @p issues or throw. */
void
defect(ValidateResult *issues, uint64_t *tally, const char *msg,
       size_t where)
{
    if (!issues)
        fatal("trace: %s (at byte %zu)", msg, where);
    if (tally)
        (*tally)++;
    if (issues->error.empty())
        issues->error = strprintf("%s (at byte %zu)", msg, where);
}

/** Set *err (when non-null) to @p msg, and @p at to the defect byte. */
ParseStatus
parseFail(ParseStatus st, std::string *err, const char *msg,
          size_t &at, size_t where)
{
    if (err)
        *err = msg;
    at = where;
    return st;
}

} // namespace

ParseStatus
parseHeader(const uint8_t *p, size_t n, TraceMeta &meta,
            size_t &consumed, std::string *err)
{
    size_t have = n < sizeof kTraceMagic ? n : sizeof kTraceMagic;
    if (std::memcmp(p, kTraceMagic, have) != 0)
        return parseFail(ParseStatus::Malformed, err,
                        "not an IPDS trace (bad magic)", consumed, 0);
    if (n < kHeaderBytes)
        return parseFail(ParseStatus::NeedMore, err,
                        "truncated trace header", consumed, 0);
    meta.version = getU32(p + 8);
    if (meta.version < kMinTraceVersion ||
        meta.version > kTraceVersion) {
        if (err)
            *err = strprintf("format version %u, this reader handles "
                             "%u..%u",
                             meta.version, kMinTraceVersion,
                             kTraceVersion);
        consumed = 8;
        return ParseStatus::VersionSkew;
    }
    uint32_t hdrCrc = getU32(p + 36);
    if (crc32(p, 36) != hdrCrc)
        return parseFail(ParseStatus::ChunkCrcMismatch, err,
                        "header CRC mismatch", consumed, 36);
    meta.flags = getU32(p + 12);
    meta.moduleHash = getU64(p + 16);
    meta.sessions = getU32(p + 24);
    meta.shards = getU32(p + 28);
    uint32_t timingWords = getU32(p + 32);
    if (timingWords != 0 && timingWords != kTimingConfigWords)
        return parseFail(ParseStatus::Malformed, err,
                        "bad timing block size", consumed, 32);
    if (meta.sessions == 0 || meta.shards == 0 ||
        meta.shards > meta.sessions)
        return parseFail(ParseStatus::Malformed, err,
                        "impossible session/shard counts", consumed,
                        24);
    meta.hasTiming = timingWords != 0;
    size_t off = kHeaderBytes;
    if (meta.hasTiming) {
        if (n < off + 4 * kTimingConfigWords)
            return parseFail(ParseStatus::NeedMore, err,
                            "truncated timing block", consumed, off);
        uint32_t words[kTimingConfigWords];
        for (uint32_t i = 0; i < kTimingConfigWords; ++i)
            words[i] = getU32(p + off + 4 * i);
        meta.timing = unpackTimingConfig(words);
        off += 4 * kTimingConfigWords;
    }
    consumed = off;
    return ParseStatus::Ok;
}

ParseStatus
parseChunk(const uint8_t *p, size_t n, ChunkRef &out,
           size_t &consumed, std::string *err)
{
    if (n < kChunkHeaderBytes)
        return parseFail(ParseStatus::NeedMore, err,
                        "truncated chunk header", consumed, 0);
    out.payloadLen = getU32(p);
    out.events = getU32(p + 4);
    out.session = getU32(p + 8);
    uint32_t crc = getU32(p + 12);
    // A corrupt length must not make a streamed ingest wait forever
    // for bytes that will never come: writers cap payloads at
    // kChunkPayloadCap, so anything far past it is Malformed, not
    // NeedMore. The one exception is the v2 index footer chunk
    // (session == kIndexSession), whose payload scales with the chunk
    // count and is capped separately.
    size_t cap = out.session == kIndexSession ? kIndexPayloadCap
                                              : 4 * kChunkPayloadCap;
    if (out.payloadLen == 0 || out.payloadLen > cap)
        return parseFail(ParseStatus::Malformed, err,
                        "impossible chunk payload length", consumed,
                        0);
    if (n - kChunkHeaderBytes < out.payloadLen)
        return parseFail(ParseStatus::NeedMore, err,
                        "truncated chunk payload", consumed, 0);
    out.payloadOff = kChunkHeaderBytes;
    if (crc32(p + kChunkHeaderBytes, out.payloadLen) != crc)
        return parseFail(ParseStatus::ChunkCrcMismatch, err,
                        "chunk CRC mismatch", consumed,
                        kChunkHeaderBytes);
    consumed = kChunkHeaderBytes + out.payloadLen;
    return ParseStatus::Ok;
}

void
TraceFile::parse(ValidateResult *issues)
{
    const uint8_t *b = bytes_.data();
    const size_t n = bytes_.size();

    std::string err;
    size_t at = 0;
    switch (parseHeader(b, n, meta_, at, &err)) {
      case ParseStatus::Ok:
        break;
      case ParseStatus::NeedMore:
        defect(issues, issues ? &issues->truncatedChunks : nullptr,
               err.c_str(), at);
        return;
      case ParseStatus::ChunkCrcMismatch:
        defect(issues, issues ? &issues->crcFailures : nullptr,
               err.c_str(), at);
        return;
      case ParseStatus::VersionSkew:
        if (!issues)
            fatal("trace: format version %u, this build reads "
                  "version %u — re-record the trace",
                  meta_.version, kTraceVersion);
        issues->versionMismatches++;
        if (issues->error.empty())
            issues->error = err;
        return;
      case ParseStatus::Malformed:
        defect(issues, nullptr, err.c_str(), at);
        return;
    }
    size_t off = at;

    uint32_t prevSession = 0;
    bool first = true;
    uint32_t seqSession = 0;
    uint64_t seq = 0;
    while (off < n) {
        // v2 files close with a 16-byte index trailer; at a chunk
        // boundary its magic cannot be mistaken for a chunk header
        // (a payloadLen spelling "IPDS" is far past every length cap).
        if (meta_.version >= 2 && n - off >= 8 &&
            std::memcmp(b + off, kIndexTrailerMagic, 8) == 0) {
            size_t rem = n - off;
            size_t used =
                rem < kIndexTrailerBytes ? rem : kIndexTrailerBytes;
            if (rem < kIndexTrailerBytes && issues)
                issues->indexDefects++;
            indexBytes_ += used;
            off += used;
            if (off < n) {
                defect(issues, nullptr, "bytes after index trailer",
                       off);
                return;
            }
            break;
        }
        ChunkRef c;
        size_t used = 0;
        ParseStatus st = parseChunk(b + off, n - off, c, used, &err);
        // The v2 index footer chunk is advisory: any defect in it
        // degrades to "no usable index" (it is recomputed by this very
        // scan), never to a failed file. It is only recognized when
        // enough of the chunk header is present to read the sentinel.
        bool footer = meta_.version >= 2 && n - off >= 12 &&
            getU32(b + off + 8) == kIndexSession;
        if (footer) {
            if (st == ParseStatus::Ok) {
                if (c.payloadLen % kIndexEntryBytes == 0 &&
                    static_cast<uint64_t>(c.events) *
                            kIndexEntryBytes == c.payloadLen)
                    hasFooter_ = true;
                else if (issues)
                    issues->indexDefects++;
                indexBytes_ += used;
                off += used;
                continue;
            }
            if (issues)
                issues->indexDefects++;
            if (st == ParseStatus::ChunkCrcMismatch) {
                // parseFail overloaded `used` with the defect offset;
                // the skip distance is recomputed from the header.
                size_t skip = kChunkHeaderBytes + c.payloadLen;
                indexBytes_ += skip;
                off += skip;
                continue;
            }
            // Truncated or impossible footer: it is the last
            // structure in the file, so consume the tail and stop.
            indexBytes_ += n - off;
            break;
        }
        if (st == ParseStatus::NeedMore) {
            defect(issues,
                   issues ? &issues->truncatedChunks : nullptr,
                   err.c_str(), off + used);
            return;
        }
        if (st == ParseStatus::Malformed) {
            defect(issues, nullptr, err.c_str(), off + used);
            return;
        }
        size_t payloadOff = off + kChunkHeaderBytes;
        off = payloadOff + c.payloadLen;
        if (c.session >= meta_.sessions ||
            (!first && c.session < prevSession)) {
            defect(issues, nullptr, "chunk session out of order", off);
            return;
        }
        prevSession = c.session;
        first = false;
        // Session-relative event sequence: the scan computes the same
        // values the footer records, so the two indexes are
        // field-for-field interchangeable.
        if (c.session != seqSession) {
            seqSession = c.session;
            seq = 0;
        }
        c.firstSeq = seq;
        seq += c.events;
        c.endSeq = seq;
        if (st == ParseStatus::ChunkCrcMismatch) {
            defect(issues, issues ? &issues->crcFailures : nullptr,
                   err.c_str(), payloadOff);
            continue; // tally mode: skip the corrupt chunk
        }
        c.payloadOff = payloadOff; // rebase from parse window to file
        if (meta_.version >= 2 && c.payloadLen > 0 &&
            b[payloadOff] == static_cast<uint8_t>(Tag::Snapshot))
            c.flags |= kChunkHasSnapshot;
        index.push_back(c);
    }
    if (index.empty())
        defect(issues, nullptr, "trace has no chunks", n);
}

TraceFile
TraceFile::fromBytes(std::vector<uint8_t> bytes)
{
    TraceFile f;
    f.bytes_ = std::move(bytes);
    f.parse(nullptr);
    return f;
}

TraceFile
TraceFile::load(const std::string &path)
{
    return fromBytes(readFile(path));
}

bool
TraceFile::parseFromFooter(std::string *reason)
{
    auto bail = [&](const char *why) {
        if (reason)
            *reason = why;
        return false;
    };

    const uint8_t *b = bytes_.data();
    const size_t n = bytes_.size();

    std::string err;
    size_t hdr = 0;
    if (parseHeader(b, n, meta_, hdr, &err) != ParseStatus::Ok)
        return bail("header unreadable");
    if (meta_.version < 2)
        return bail("v1 trace has no index footer");
    if (n < hdr + kChunkHeaderBytes + kIndexEntryBytes +
                kIndexTrailerBytes)
        return bail("file too short for an index footer");

    const uint8_t *trailer = b + n - kIndexTrailerBytes;
    if (std::memcmp(trailer, kIndexTrailerMagic, 8) != 0)
        return bail("index trailer missing");
    uint64_t footerOff = getU64(trailer + 8);
    if (footerOff < hdr ||
        footerOff + kChunkHeaderBytes + kIndexTrailerBytes > n)
        return bail("index trailer offset out of range");

    ChunkRef fc;
    size_t used = 0;
    if (parseChunk(b + footerOff, n - kIndexTrailerBytes - footerOff,
                   fc, used, &err) != ParseStatus::Ok)
        return bail("index footer chunk corrupt");
    if (fc.session != kIndexSession)
        return bail("index footer sentinel missing");
    if (footerOff + used + kIndexTrailerBytes != n)
        return bail("index footer does not reach the trailer");
    if (fc.payloadLen % kIndexEntryBytes != 0 ||
        static_cast<uint64_t>(fc.events) * kIndexEntryBytes !=
            fc.payloadLen ||
        fc.payloadLen == 0)
        return bail("index footer geometry inconsistent");

    const size_t count = fc.payloadLen / kIndexEntryBytes;
    const uint8_t *payload = b + footerOff + fc.payloadOff;
    std::vector<ChunkRef> idx;
    idx.reserve(count);
    uint64_t expectOff = hdr;
    uint32_t prevSession = 0;
    uint64_t prevEnd = 0;
    for (size_t i = 0; i < count; ++i) {
        ChunkIndexEntry e =
            decodeIndexEntry(payload + i * kIndexEntryBytes);
        if (e.fileOffset != expectOff)
            return bail("index entries not contiguous");
        if (e.payloadLen == 0 || e.payloadLen > 4 * kChunkPayloadCap)
            return bail("index entry payload length impossible");
        if (e.session >= meta_.sessions ||
            (i > 0 && e.session < prevSession))
            return bail("index entry sessions out of order");
        bool newSession = i == 0 || e.session != prevSession;
        if (e.firstSeq != (newSession ? 0 : prevEnd) ||
            e.endSeq != e.firstSeq + e.events)
            return bail("index entry sequence numbers inconsistent");
        prevSession = e.session;
        prevEnd = e.endSeq;
        expectOff = e.fileOffset + kChunkHeaderBytes + e.payloadLen;
        ChunkRef c;
        c.payloadOff = e.fileOffset + kChunkHeaderBytes;
        c.payloadLen = e.payloadLen;
        c.events = e.events;
        c.session = e.session;
        c.flags = e.flags;
        c.firstSeq = e.firstSeq;
        c.endSeq = e.endSeq;
        idx.push_back(c);
    }
    if (expectOff != footerOff)
        return bail("index does not cover every data chunk");

    index = std::move(idx);
    hasFooter_ = true;
    indexBytes_ = n - footerOff;
    crcDeferred_ = true;
    return true;
}

TraceFile
TraceFile::fromBytesIndexed(std::vector<uint8_t> bytes,
                            IndexedLoad *info)
{
    TraceFile f;
    f.bytes_ = std::move(bytes);
    std::string reason;
    if (f.parseFromFooter(&reason)) {
        if (info) {
            info->usedIndex = true;
            info->reason.clear();
        }
        return f;
    }
    // Degrade to the strict sequential scan (which throws on real
    // defects, exactly like load()).
    f.meta_ = TraceMeta{};
    f.index.clear();
    f.hasFooter_ = false;
    f.indexBytes_ = 0;
    f.crcDeferred_ = false;
    f.parse(nullptr);
    if (info) {
        info->usedIndex = false;
        info->reason = reason;
    }
    return f;
}

TraceFile
TraceFile::loadIndexed(const std::string &path, IndexedLoad *info)
{
    return fromBytesIndexed(readFile(path), info);
}

void
TraceFile::checkChunkCrc(const ChunkRef &c) const
{
    uint32_t stored = getU32(bytes_.data() + c.payloadOff - 4);
    if (crc32(bytes_.data() + c.payloadOff, c.payloadLen) != stored)
        fatal("trace: chunk CRC mismatch (at byte %zu)",
              c.payloadOff);
}

TraceMeta
readTraceHeader(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("trace: cannot open '%s'", path.c_str());
    uint8_t buf[kHeaderBytes + 4 * kTimingConfigWords];
    in.read(reinterpret_cast<char *>(buf), sizeof buf);
    size_t got = static_cast<size_t>(in.gcount());
    TraceMeta meta;
    std::string err;
    size_t at = 0;
    switch (parseHeader(buf, got, meta, at, &err)) {
      case ParseStatus::Ok:
        return meta;
      case ParseStatus::VersionSkew:
        fatal("trace: %s — re-record the trace", err.c_str());
      default:
        fatal("trace: %s (at byte %zu)", err.c_str(), at);
    }
}

ValidateResult
TraceFile::validateBytes(const std::vector<uint8_t> &b)
{
    TraceFile f;
    f.bytes_ = b;
    ValidateResult r;
    f.parse(&r);
    r.ok = r.error.empty();
    return r;
}

ValidateResult
TraceFile::validate(const std::string &path)
{
    try {
        return validateBytes(readFile(path));
    } catch (const FatalError &e) {
        ValidateResult r;
        r.error = e.what();
        return r;
    }
}

Tag
TraceReader::tag()
{
    uint8_t t = byte();
    if (t < static_cast<uint8_t>(Tag::FuncEnter) ||
        t > static_cast<uint8_t>(Tag::Snapshot))
        fatal("trace: unknown record tag %u (at payload byte %zu)", t,
              off - 1);
    return static_cast<Tag>(t);
}

uint64_t
TraceReader::var()
{
    uint64_t v = 0;
    uint32_t shift = 0;
    for (;;) {
        if (off == n_)
            truncated();
        uint8_t byte = p_[off++];
        if (shift >= 64 || (shift == 63 && (byte & 0x7e) != 0))
            fatal("trace: varint overflow (at payload byte %zu)", off);
        v |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0)
            return v;
        shift += 7;
    }
}

uint8_t
TraceReader::byte()
{
    if (off == n_)
        truncated();
    return p_[off++];
}

const uint8_t *
TraceReader::bytes(size_t n)
{
    if (n_ - off < n)
        truncated();
    const uint8_t *r = p_ + off;
    off += n;
    return r;
}

void
TraceReader::skip(size_t n)
{
    if (n_ - off < n)
        truncated();
    off += n;
}

void
TraceReader::truncated() const
{
    fatal("trace: record truncated (at payload byte %zu)", off);
}

} // namespace replay
} // namespace ipds
