#ifndef IPDS_REPLAY_WRITER_H
#define IPDS_REPLAY_WRITER_H

/**
 * @file
 * TraceWriter: an ExecObserver that records the committed event stream
 * into the IPDS trace format (replay/format.h).
 *
 * Attach it to a Vm exactly where the replayed consumers sit in the
 * live run — after the detector and the CpuModel (or as the last
 * FaultInjector target plus its FaultEventSink), so the recorded order
 * is the order every consumer saw. The writer buffers records into a
 * chunk payload and flushes whole chunks (header + CRC) to the output
 * stream; beginSession()/endSession() bracket each session so chunks
 * never span session boundaries and sharded replay can split the file
 * by session index alone.
 *
 * Two capture modes:
 *  - BranchesOnly: function enter/exit + branch direction — all the
 *    Detector consumes. Instruction events are ignored even when the
 *    engine delivers them, so switch and threaded captures of the same
 *    run are byte-identical.
 *  - Full: additionally every committed instruction (PC-delta runs,
 *    data addresses for memory ops) — what the CpuModel needs to
 *    reproduce TimingStats bit-exactly.
 */

#include <cstdint>
#include <functional>
#include <ostream>
#include <vector>

#include "inject/fault.h"
#include "replay/format.h"
#include "vm/vm.h"

namespace ipds {
namespace replay {

class TraceWriter final : public ExecObserver, public FaultEventSink
{
  public:
    enum class Mode : uint8_t
    {
        BranchesOnly, ///< detector stream only
        Full,         ///< + instruction/data stream (timing)
    };

    /**
     * Chunks are written to @p out as they fill; the caller owns the
     * stream and the surrounding file header. Call finish() before
     * reading the stream back.
     */
    TraceWriter(std::ostream &out, Mode mode);

    Mode mode() const { return md; }

    // ---- session bracketing (Session facade / harness) ---------------

    /** Open session @p index: flushes the current chunk and records a
     *  SessionStart with no ring-fault arming. */
    void beginSession(uint32_t index);

    /** Open session @p index with RequestRing::setFault parameters so
     *  replay re-arms the identical drop/dup filter. */
    void beginSession(uint32_t index, uint32_t drop_permille,
                      uint32_t dup_permille, uint64_t ring_seed);

    /**
     * Close the current session, recording the run counters replay
     * reports back through the session metrics (ipds.session.* /
     * ipds.vm.* / fault mem-tamper count), then flush the chunk.
     */
    void endSession(uint64_t steps, uint64_t input_events,
                    uint64_t mem_tampers, uint64_t instructions,
                    uint64_t blocks, uint64_t batch_flushes);

    /** Flush any buffered partial chunk. Idempotent. */
    void finish();

    // ---- v2 snapshots + chunk index -----------------------------------

    /**
     * Arm periodic detector-state snapshots: every @p every data
     * chunks within a session, the writer flushes the current chunk
     * and opens the next one with a Tag::Snapshot record whose blob
     * the provider fills (replay/snapshot.h encoding). 0 disables.
     *
     * The pending snapshot is emitted only at the end of a function
     * enter/exit event — those are direct calls in both per-event and
     * batched delivery, and with the writer attached last the
     * detector/CpuModel state there corresponds exactly to the bytes
     * written so far. That keeps captures byte-identical across
     * delivery modes and makes the blob a valid resume point for the
     * chunk it opens.
     */
    void setSnapshotProvider(
        std::function<void(std::vector<uint8_t> &)> provider);
    void snapshotEvery(uint32_t every) { snapEvery = every; }

    /** Per-chunk index entries accumulated so far, with fileOffset
     *  relative to this writer's stream (the Session layer rebases
     *  them when concatenating shard streams). */
    const std::vector<ChunkIndexEntry> &indexEntries() const
    {
        return entries_;
    }

    uint64_t snapshotsWritten() const { return snapsOut; }

    // ---- ExecObserver -------------------------------------------------

    bool wantsInstEvents() const override { return md == Mode::Full; }
    void onFunctionEnter(FuncId f) override;
    void onFunctionExit(FuncId f) override;
    void onBranch(FuncId f, uint64_t pc, bool taken) override;
    void onInst(const Inst &in, uint64_t mem_addr, uint32_t mem_size,
                bool is_load) override;
    // onBatch: the inherited default replays the per-event callbacks
    // in commit order, which is exactly the stream to record.

    // ---- FaultEventSink (out-of-band fault commits) -------------------

    void onBsvFlip(uint32_t slot, BsvState s) override;
    void onCtxSwitch(bool lazy) override;

    // ---- counters (ipds.replay.* on the capture side) -----------------

    uint64_t bytesWritten() const { return bytesOut; }
    uint64_t chunksWritten() const { return chunksOut; }
    uint64_t eventsWritten() const { return eventsOut; }

  private:
    void putVar(uint64_t v);
    void putSvar(int64_t v) { putVar(zigzagEncode(v)); }
    void tag(Tag t) { payload.push_back(static_cast<uint8_t>(t)); }

    /** Emit the pending sequential-instruction run, if any. */
    void flushRun();
    /** Emit the buffered chunk, if any; resets the delta context. */
    void flushChunk();
    /** flushRun + count an event + chunk-cap check. */
    void sealRecord(uint32_t events_in_record = 1);
    /** Emit a due snapshot at a function-event boundary (see
     *  setSnapshotProvider). */
    void maybeSnapshot();

    std::ostream &out;
    Mode md;

    std::vector<uint8_t> payload;
    uint32_t chunkEvents = 0;
    uint32_t curSession = 0;

    uint64_t prevPc = 0;
    uint64_t prevAddr = 0;
    uint32_t pendingRun = 0;

    uint64_t bytesOut = 0;
    uint64_t chunksOut = 0;
    uint64_t eventsOut = 0;

    // v2 snapshot + index state.
    std::function<void(std::vector<uint8_t> &)> snapProvider;
    uint32_t snapEvery = 0;
    uint32_t chunksSinceSnap = 0;
    bool sessOpen = false;
    bool chunkStartsWithSnap = false;
    uint64_t sessSeq = 0; ///< events flushed for curSession so far
    std::vector<ChunkIndexEntry> entries_;
    uint64_t snapsOut = 0;
};

} // namespace replay
} // namespace ipds

#endif // IPDS_REPLAY_WRITER_H
