#include "replay/snapshot.h"

#include "support/diag.h"

namespace ipds {
namespace replay {

namespace {

void
putVar(std::vector<uint8_t> &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<uint8_t>(v));
}

/** Bounds-checked decode cursor (mirrors TraceReader, blob-local). */
struct Cur
{
    const uint8_t *p;
    size_t n;
    size_t off = 0;

    uint8_t
    byte()
    {
        if (off == n)
            fatal("snapshot: truncated (at blob byte %zu)", off);
        return p[off++];
    }

    uint64_t
    var()
    {
        uint64_t v = 0;
        uint32_t shift = 0;
        for (;;) {
            uint8_t b = byte();
            if (shift >= 64 || (shift == 63 && (b & 0x7e) != 0))
                fatal("snapshot: varint overflow (at blob byte %zu)",
                      off);
            v |= static_cast<uint64_t>(b & 0x7f) << shift;
            if ((b & 0x80) == 0)
                return v;
            shift += 7;
        }
    }
};

void
encodeDetector(const DetectorSnapshot &d, std::vector<uint8_t> &out)
{
    putVar(out, d.activations.size());
    for (const auto &a : d.activations) {
        putVar(out, a.func);
        putVar(out, a.slots.size());
        for (const auto &sl : a.slots) {
            putVar(out, sl.first);
            out.push_back(sl.second);
        }
    }
    putVar(out, d.stats.branchesSeen);
    putVar(out, d.stats.checksEnqueued);
    putVar(out, d.stats.updatesApplied);
    putVar(out, d.stats.actionsApplied);
    putVar(out, d.stats.framesPushed);
    putVar(out, d.stats.maxStackDepth);
    putVar(out, d.alarmsSoFar);
}

void
decodeDetector(Cur &c, DetectorSnapshot &d)
{
    uint64_t acts = c.var();
    d.activations.clear();
    d.activations.reserve(acts);
    for (uint64_t i = 0; i < acts; ++i) {
        DetectorSnapshot::Activation a;
        a.func = static_cast<FuncId>(c.var());
        uint64_t slots = c.var();
        a.slots.reserve(slots);
        for (uint64_t s = 0; s < slots; ++s) {
            uint32_t slot = static_cast<uint32_t>(c.var());
            uint8_t st = c.byte();
            a.slots.emplace_back(slot, st);
        }
        d.activations.push_back(std::move(a));
    }
    d.stats.branchesSeen = c.var();
    d.stats.checksEnqueued = c.var();
    d.stats.updatesApplied = c.var();
    d.stats.actionsApplied = c.var();
    d.stats.framesPushed = c.var();
    d.stats.maxStackDepth = static_cast<size_t>(c.var());
    d.alarmsSoFar = c.var();
}

void
encodeTiming(const TimingStats &t, const EngineSnapshot &e,
             std::vector<uint8_t> &out)
{
    putVar(out, t.instructions);
    putVar(out, t.cycles);
    putVar(out, t.branches);
    putVar(out, t.mispredicts);
    putVar(out, t.l1iMisses);
    putVar(out, t.l1dMisses);
    putVar(out, t.l2Misses);
    putVar(out, t.tlbMisses);
    putVar(out, t.ipdsStallCycles);
    putVar(out, t.ringMaxOccupancy);
    putVar(out, t.ringDrains);
    putVar(out, t.ringOverflowFlushes);
    putVar(out, t.ringFaultDrops);
    putVar(out, t.ringFaultDups);
    const EngineStats &s = e.stats;
    putVar(out, s.requests);
    putVar(out, s.checkRequests);
    putVar(out, s.updateRequests);
    putVar(out, s.busyCycles);
    putVar(out, s.queueFullStalls);
    putVar(out, s.stallCycles);
    putVar(out, s.spillEvents);
    putVar(out, s.spillBits);
    putVar(out, s.fillEvents);
    putVar(out, s.fillBits);
    putVar(out, s.checkLatencySum);
    putVar(out, s.checkLatencyCount);
    putVar(out, s.framesDepth);
    putVar(out, s.depthClamps);
    putVar(out, s.accountingClamps);
    putVar(out, e.inflight.size());
    for (uint64_t v : e.inflight)
        putVar(out, v);
    putVar(out, e.engineFree);
    putVar(out, e.frames.size());
    for (const auto &fr : e.frames) {
        putVar(out, fr.bits);
        out.push_back(fr.spilled ? 1 : 0);
    }
    putVar(out, e.residentBits);
}

void
decodeTiming(Cur &c, TimingStats &t, EngineSnapshot &e)
{
    t.instructions = c.var();
    t.cycles = c.var();
    t.branches = c.var();
    t.mispredicts = c.var();
    t.l1iMisses = c.var();
    t.l1dMisses = c.var();
    t.l2Misses = c.var();
    t.tlbMisses = c.var();
    t.ipdsStallCycles = c.var();
    t.ringMaxOccupancy = c.var();
    t.ringDrains = c.var();
    t.ringOverflowFlushes = c.var();
    t.ringFaultDrops = c.var();
    t.ringFaultDups = c.var();
    EngineStats &s = e.stats;
    s.requests = c.var();
    s.checkRequests = c.var();
    s.updateRequests = c.var();
    s.busyCycles = c.var();
    s.queueFullStalls = c.var();
    s.stallCycles = c.var();
    s.spillEvents = c.var();
    s.spillBits = c.var();
    s.fillEvents = c.var();
    s.fillBits = c.var();
    s.checkLatencySum = c.var();
    s.checkLatencyCount = c.var();
    s.framesDepth = c.var();
    s.depthClamps = c.var();
    s.accountingClamps = c.var();
    t.engine = s;
    uint64_t inflight = c.var();
    e.inflight.clear();
    e.inflight.reserve(inflight);
    for (uint64_t i = 0; i < inflight; ++i)
        e.inflight.push_back(c.var());
    e.engineFree = c.var();
    uint64_t frames = c.var();
    e.frames.clear();
    e.frames.reserve(frames);
    for (uint64_t i = 0; i < frames; ++i) {
        EngineSnapshot::FrameBits fr;
        fr.bits = c.var();
        fr.spilled = c.byte() != 0;
        e.frames.push_back(fr);
    }
    e.residentBits = c.var();
}

} // namespace

void
encodeSnapshot(const SnapshotData &data, std::vector<uint8_t> &out)
{
    out.push_back(kSnapshotVersion);
    uint8_t sections = 0;
    if (data.hasDetector)
        sections |= kSnapSectionDetector;
    if (data.hasTiming)
        sections |= kSnapSectionTiming;
    out.push_back(sections);
    if (data.hasDetector)
        encodeDetector(data.det, out);
    if (data.hasTiming)
        encodeTiming(data.tim, data.engine, out);
}

void
decodeSnapshot(const uint8_t *p, size_t n, SnapshotData &out)
{
    Cur c{p, n};
    uint8_t version = c.byte();
    if (version != kSnapshotVersion)
        fatal("snapshot: version %u, this build reads version %u",
              version, kSnapshotVersion);
    uint8_t sections = c.byte();
    if (sections &
        ~static_cast<uint8_t>(kSnapSectionDetector |
                              kSnapSectionTiming))
        fatal("snapshot: unknown section bits 0x%02x", sections);
    out.hasDetector = (sections & kSnapSectionDetector) != 0;
    out.hasTiming = (sections & kSnapSectionTiming) != 0;
    if (out.hasDetector)
        decodeDetector(c, out.det);
    if (out.hasTiming)
        decodeTiming(c, out.tim, out.engine);
    if (c.off != n)
        fatal("snapshot: %zu trailing bytes", n - c.off);
}

} // namespace replay
} // namespace ipds
