#ifndef IPDS_REPLAY_SNAPSHOT_H
#define IPDS_REPLAY_SNAPSHOT_H

/**
 * @file
 * Versioned serialization of detector/engine state for the v2 trace
 * format's Tag::Snapshot records.
 *
 * A snapshot blob is self-describing:
 *
 *   u8 version                  (kSnapshotVersion)
 *   u8 sections                 (kSnapSectionDetector | kSnapSectionTiming)
 *   [detector section]          when kSnapSectionDetector:
 *     varint activationCount
 *     per activation: varint funcId, varint slotCount,
 *                     per slot: varint slot, u8 state
 *     DetectorStats             (5 varints + varint maxStackDepth)
 *     varint alarmsSoFar
 *   [timing section]            when kSnapSectionTiming:
 *     TimingStats               (14 varints, engine excluded)
 *     EngineStats               (15 varints)
 *     varint inflightCount, per entry varint completionTime
 *     varint engineFree
 *     varint frameCount, per frame: varint bits, u8 spilled
 *     varint residentBits
 *
 * The blob is embedded in a CRC-guarded chunk, so decode assumes
 * structural integrity was already checked at the chunk level; any
 * overrun or version skew still raises a recoverable FatalError
 * (truncated-snapshot corruption is a tested degradation path).
 *
 * Versioning: ANY change to this layout bumps kSnapshotVersion; the
 * golden v2 fixture pins the encoding.
 */

#include <cstdint>
#include <vector>

#include "ipds/detector.h"
#include "timing/cpu.h"
#include "timing/engine.h"

namespace ipds {
namespace replay {

inline constexpr uint8_t kSnapshotVersion = 1;

inline constexpr uint8_t kSnapSectionDetector = 1u << 0;
inline constexpr uint8_t kSnapSectionTiming = 1u << 1;

/** Everything a Tag::Snapshot record carries. */
struct SnapshotData
{
    bool hasDetector = false;
    DetectorSnapshot det;

    bool hasTiming = false;
    TimingStats tim;       ///< running CpuModel stats (engine included)
    EngineSnapshot engine; ///< resumable IpdsEngine state
};

/** Append the serialized form of @p data to @p out. */
void encodeSnapshot(const SnapshotData &data,
                    std::vector<uint8_t> &out);

/** Decode @p n bytes at @p p. FatalError on truncation/version skew. */
void decodeSnapshot(const uint8_t *p, size_t n, SnapshotData &out);

} // namespace replay
} // namespace ipds

#endif // IPDS_REPLAY_SNAPSHOT_H
