#include "ir/ir.h"

#include <sstream>

#include "support/diag.h"

/**
 * @file
 * Textual rendering of modules for tests, debugging and the correlation
 * explorer example. The format is intentionally assembler-like:
 *
 *   func main() {
 *   bb0:
 *     v1 = const 5
 *     store i64 x, v1
 *     ...
 *     br v3 -> bb1, bb2
 *   }
 */

namespace ipds {

namespace {

std::string
vregName(Vreg v)
{
    return v == kNoVreg ? std::string("_") : strprintf("v%u", v);
}

std::string
sizeName(MemSize s)
{
    return s == MemSize::I8 ? "i8" : "i64";
}

void
printInst(std::ostringstream &os, const Module &m, const Inst &in)
{
    os << "    ";
    switch (in.op) {
      case Op::ConstInt:
        os << vregName(in.dst) << " = const " << in.imm;
        break;
      case Op::AddrOf:
        os << vregName(in.dst) << " = addrof "
           << m.objects[in.object].name;
        if (in.imm != 0)
            os << "+" << in.imm;
        break;
      case Op::Load:
        os << vregName(in.dst) << " = load " << sizeName(in.size) << " "
           << m.objects[in.object].name;
        if (in.imm != 0)
            os << "+" << in.imm;
        break;
      case Op::LoadInd:
        os << vregName(in.dst) << " = loadind " << sizeName(in.size)
           << " [" << vregName(in.srcA) << "]";
        break;
      case Op::Store:
        os << "store " << sizeName(in.size) << " "
           << m.objects[in.object].name;
        if (in.imm != 0)
            os << "+" << in.imm;
        os << ", " << vregName(in.srcA);
        break;
      case Op::StoreInd:
        os << "storeind " << sizeName(in.size) << " ["
           << vregName(in.srcA) << "], " << vregName(in.srcB);
        break;
      case Op::Bin:
        os << vregName(in.dst) << " = " << binOpName(in.bin) << " "
           << vregName(in.srcA) << ", " << vregName(in.srcB);
        break;
      case Op::Cmp:
        os << vregName(in.dst) << " = cmp " << predName(in.pred) << " "
           << vregName(in.srcA) << ", " << vregName(in.srcB);
        break;
      case Op::Br:
        os << "br " << vregName(in.srcA) << " -> bb" << in.target
           << ", bb" << in.fallthrough;
        break;
      case Op::Jmp:
        os << "jmp bb" << in.target;
        break;
      case Op::Call: {
        if (in.dst != kNoVreg)
            os << vregName(in.dst) << " = ";
        os << "call ";
        if (in.builtin != Builtin::None)
            os << builtinName(in.builtin);
        else
            os << m.functions[in.callee].name;
        os << "(";
        for (size_t i = 0; i < in.args.size(); i++) {
            if (i)
                os << ", ";
            os << vregName(in.args[i]);
        }
        os << ")";
        break;
      }
      case Op::Ret:
        os << "ret";
        if (in.srcA != kNoVreg)
            os << " " << vregName(in.srcA);
        break;
      case Op::GetArg:
        os << vregName(in.dst) << " = getarg " << in.imm;
        break;
    }
    if (in.pc != 0)
        os << "    ; pc=0x" << std::hex << in.pc << std::dec;
    os << "\n";
}

} // namespace

std::string
Module::print() const
{
    std::ostringstream os;
    os << "module " << name << "\n";
    for (const auto &obj : objects) {
        if (obj.kind == ObjectKind::Local)
            continue;
        os << (obj.kind == ObjectKind::Const ? "const " : "global ")
           << obj.name << " : " << obj.size << " bytes\n";
    }
    for (const auto &fn : functions) {
        os << "\nfunc " << fn.name << "(" << fn.numParams << " args)"
           << (fn.returnsValue ? " -> i64" : "") << " {\n";
        for (ObjectId oid : fn.locals) {
            const auto &obj = objects[oid];
            os << "  local " << obj.name << " : " << obj.size
               << " bytes" << (obj.isArray ? " array" : "") << "\n";
        }
        for (const auto &bb : fn.blocks) {
            os << "  bb" << bb.id;
            if (!bb.label.empty())
                os << " (" << bb.label << ")";
            os << ":\n";
            for (const auto &inst : bb.insts)
                printInst(os, *this, inst);
        }
        os << "}\n";
    }
    return os.str();
}

} // namespace ipds
