#include "ir/builtins.h"

#include <array>
#include <unordered_map>

#include "support/diag.h"

namespace ipds {

namespace {

struct BuiltinDesc
{
    const char *name;
    BuiltinEffects fx;
};

// Parameter bitmasks: bit i set => parameter i's pointee is touched.
constexpr uint8_t P0 = 1 << 0;
constexpr uint8_t P1 = 1 << 1;

const std::array<BuiltinDesc,
                 static_cast<size_t>(Builtin::NumBuiltins)> descs = {{
    {"", {}},
    {"print_str", {.readsParams = P0, .numParams = 1}},
    {"print_int", {.numParams = 1}},
    {"get_input", {.writesParams = P0, .input = true, .numParams = 1}},
    {"get_input_n", {.writesParams = P0, .input = true, .numParams = 2}},
    {"input_int",
     {.input = true, .returnsValue = true, .numParams = 0}},
    {"strcpy", {.readsParams = P1, .writesParams = P0, .numParams = 2}},
    {"strncpy", {.readsParams = P1, .writesParams = P0, .numParams = 3}},
    {"strcat",
     {.readsParams = P0 | P1, .writesParams = P0, .numParams = 2}},
    {"strcmp",
     {.readsParams = P0 | P1, .pure = true, .returnsValue = true,
      .numParams = 2}},
    {"strncmp",
     {.readsParams = P0 | P1, .pure = true, .returnsValue = true,
      .numParams = 3}},
    {"strlen",
     {.readsParams = P0, .pure = true, .returnsValue = true,
      .numParams = 1}},
    {"memset", {.writesParams = P0, .numParams = 3}},
    {"memcpy", {.readsParams = P1, .writesParams = P0, .numParams = 3}},
    {"memcmp",
     {.readsParams = P0 | P1, .pure = true, .returnsValue = true,
      .numParams = 3}},
    {"atoi",
     {.readsParams = P0, .pure = true, .returnsValue = true,
      .numParams = 1}},
    {"exit", {.noreturn = true, .numParams = 1}},
    {"abort", {.noreturn = true, .numParams = 0}},
}};

} // namespace

const BuiltinEffects &
builtinEffects(Builtin b)
{
    if (b == Builtin::None || b >= Builtin::NumBuiltins)
        panic("builtinEffects: invalid builtin %d", static_cast<int>(b));
    return descs[static_cast<size_t>(b)].fx;
}

const char *
builtinName(Builtin b)
{
    if (b >= Builtin::NumBuiltins)
        panic("builtinName: invalid builtin %d", static_cast<int>(b));
    return descs[static_cast<size_t>(b)].name;
}

Builtin
builtinByName(const std::string &name)
{
    static const std::unordered_map<std::string, Builtin> index = [] {
        std::unordered_map<std::string, Builtin> m;
        for (size_t i = 1; i < descs.size(); i++)
            m.emplace(descs[i].name, static_cast<Builtin>(i));
        return m;
    }();
    auto it = index.find(name);
    return it == index.end() ? Builtin::None : it->second;
}

} // namespace ipds
