#ifndef IPDS_IR_BUILDER_H
#define IPDS_IR_BUILDER_H

/**
 * @file
 * Convenience API for constructing IR, used by the MiniC code generator
 * and by tests that hand-build CFGs (e.g. the Figure 2/3/4 examples from
 * the paper).
 */

#include "ir/ir.h"

namespace ipds {

/**
 * Builds one function inside a module. Typical usage:
 *
 *   FuncBuilder fb(mod, "main", 0, false);
 *   ObjectId x = fb.addLocal("x", 8);
 *   Vreg c = fb.constInt(5);
 *   fb.store(x, c);
 *   ...
 *   fb.ret();
 *   fb.finish();
 */
class FuncBuilder
{
  public:
    /**
     * Start building function @p fname with @p num_params parameters.
     * The function is appended to @p mod immediately; finish() seals it.
     */
    FuncBuilder(Module &mod, const std::string &fname, uint32_t num_params,
                bool returns_value);

    /** The function id being built. */
    FuncId funcId() const { return fid; }

    /** Create a scalar local (8 bytes). Returns its object id. */
    ObjectId addLocal(const std::string &lname, uint32_t size = 8);

    /** Create an array/buffer local. */
    ObjectId addArray(const std::string &lname, uint32_t bytes,
                      MemSize elem = MemSize::I8);

    /** Create a new (empty) basic block; does not switch to it. */
    BlockId newBlock(const std::string &label = "");

    /** Direct subsequent instructions into block @p b. */
    void setBlock(BlockId b);

    /** Current insertion block. */
    BlockId curBlock() const { return cur; }

    /** True if the current block already has a terminator. */
    bool blockTerminated() const;

    // --- value-producing instructions -------------------------------
    Vreg constInt(int64_t v);
    Vreg addrOf(ObjectId obj, int64_t offset = 0);
    Vreg load(ObjectId obj, int64_t offset = 0,
              MemSize size = MemSize::I64);
    Vreg loadInd(Vreg addr, MemSize size = MemSize::I64);
    Vreg bin(BinOp op, Vreg a, Vreg b);
    Vreg cmp(Pred p, Vreg a, Vreg b);
    Vreg getArg(uint32_t idx);
    /** Call a user function by id. dst valid iff it returns a value. */
    Vreg call(FuncId callee, std::vector<Vreg> args, bool wants_value);
    /** Call a builtin. dst valid iff the builtin returns a value. */
    Vreg callBuiltin(Builtin b, std::vector<Vreg> args);

    // --- void instructions -------------------------------------------
    void store(ObjectId obj, Vreg val, int64_t offset = 0,
               MemSize size = MemSize::I64);
    void storeInd(Vreg addr, Vreg val, MemSize size = MemSize::I64);
    void br(Vreg cond, BlockId taken, BlockId not_taken);
    void jmp(BlockId target);
    void ret(Vreg v = kNoVreg);

    /** Set the source line attached to subsequently emitted insts. */
    void setLine(uint32_t line) { curLine = line; }

    /**
     * Seal the function: ensure every block is terminated (void
     * functions get an implicit `ret`; anything else panics) and refresh
     * predecessor lists.
     */
    void finish();

  private:
    Inst &emit(Inst in);
    Vreg freshVreg();
    Function &fn();

    Module &mod;
    FuncId fid;
    BlockId cur = 0;
    uint32_t curLine = 0;
};

} // namespace ipds

#endif // IPDS_IR_BUILDER_H
