#ifndef IPDS_IR_BUILTINS_H
#define IPDS_IR_BUILTINS_H

/**
 * @file
 * Builtin (C-library-style) functions known to the compiler and the VM.
 *
 * The paper (§5.3) handles standard C library calls specially because
 * their memory side effects are known exactly. Each builtin here carries
 * an effect descriptor: which pointer parameters are read, which are
 * written, and whether the function is a pure function of the bytes it
 * reads (enabling the strncmp-style branch correlation of Figure 1).
 */

#include <cstdint>
#include <string>

namespace ipds {

/** Identifiers for the builtins implemented by the VM. */
enum class Builtin : uint8_t
{
    None,       ///< not a builtin (user-defined function)
    PrintStr,   ///< print_str(ptr): write NUL-terminated string to stdout
    PrintInt,   ///< print_int(v): write integer to stdout
    GetInput,   ///< get_input(buf): UNBOUNDED copy of next input line
    GetInputN,  ///< get_input_n(buf, n): bounded copy of next input line
    InputInt,   ///< input_int(): next input line parsed as integer
    Strcpy,     ///< strcpy(dst, src): UNBOUNDED copy (overflow vector)
    Strncpy,    ///< strncpy(dst, src, n)
    Strcat,     ///< strcat(dst, src): UNBOUNDED append (overflow vector)
    Strcmp,     ///< strcmp(a, b) -> int (pure)
    Strncmp,    ///< strncmp(a, b, n) -> int (pure)
    Strlen,     ///< strlen(s) -> int (pure)
    Memset,     ///< memset(dst, byte, n)
    Memcpy,     ///< memcpy(dst, src, n)
    Memcmp,     ///< memcmp(a, b, n) -> int (pure)
    Atoi,       ///< atoi(s) -> int (pure)
    Exit,       ///< exit(code): terminate the program
    Abort,      ///< abort(): terminate with failure
    NumBuiltins
};

/** Static side-effect description of a builtin (paper §5.3). */
struct BuiltinEffects
{
    /** Bitmask of parameter indices whose pointees may be READ. */
    uint8_t readsParams = 0;
    /** Bitmask of parameter indices whose pointees may be WRITTEN. */
    uint8_t writesParams = 0;
    /**
     * True if the return value is a pure function of scalar args plus the
     * bytes read through readsParams (strcmp/strncmp/strlen/memcmp/atoi).
     * Pure builtins enable same-outcome correlation between two calls
     * with identical arguments and no intervening clobber.
     */
    bool pure = false;
    /** True if the call consumes external input (never correlatable). */
    bool input = false;
    /** True if the call terminates the program. */
    bool noreturn = false;
    /** True if the call returns a value. */
    bool returnsValue = false;
    /** Number of parameters. */
    uint8_t numParams = 0;
};

/** Effect descriptor for @p b. Panics on Builtin::None. */
const BuiltinEffects &builtinEffects(Builtin b);

/** Source-level name ("strcpy", ...). Empty for Builtin::None. */
const char *builtinName(Builtin b);

/** Look a builtin up by source name; Builtin::None if unknown. */
Builtin builtinByName(const std::string &name);

} // namespace ipds

#endif // IPDS_IR_BUILTINS_H
