#include "ir/ir.h"

#include <algorithm>

#include "support/diag.h"

namespace ipds {

Pred
negatePred(Pred p)
{
    switch (p) {
      case Pred::EQ: return Pred::NE;
      case Pred::NE: return Pred::EQ;
      case Pred::LT: return Pred::GE;
      case Pred::LE: return Pred::GT;
      case Pred::GT: return Pred::LE;
      case Pred::GE: return Pred::LT;
    }
    panic("negatePred: bad predicate");
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::ConstInt: return "const";
      case Op::AddrOf: return "addrof";
      case Op::Load: return "load";
      case Op::LoadInd: return "loadind";
      case Op::Store: return "store";
      case Op::StoreInd: return "storeind";
      case Op::Bin: return "bin";
      case Op::Cmp: return "cmp";
      case Op::Br: return "br";
      case Op::Jmp: return "jmp";
      case Op::Call: return "call";
      case Op::Ret: return "ret";
      case Op::GetArg: return "getarg";
    }
    return "?";
}

const char *
binOpName(BinOp op)
{
    switch (op) {
      case BinOp::Add: return "add";
      case BinOp::Sub: return "sub";
      case BinOp::Mul: return "mul";
      case BinOp::Div: return "div";
      case BinOp::Rem: return "rem";
      case BinOp::And: return "and";
      case BinOp::Or: return "or";
      case BinOp::Xor: return "xor";
      case BinOp::Shl: return "shl";
      case BinOp::Shr: return "shr";
    }
    return "?";
}

const char *
predName(Pred p)
{
    switch (p) {
      case Pred::EQ: return "eq";
      case Pred::NE: return "ne";
      case Pred::LT: return "lt";
      case Pred::LE: return "le";
      case Pred::GT: return "gt";
      case Pred::GE: return "ge";
    }
    return "?";
}

const Inst &
BasicBlock::terminator() const
{
    if (insts.empty() || !insts.back().isTerminator())
        panic("block %u has no terminator", id);
    return insts.back();
}

Inst &
BasicBlock::terminator()
{
    if (insts.empty() || !insts.back().isTerminator())
        panic("block %u has no terminator", id);
    return insts.back();
}

std::vector<BlockId>
BasicBlock::successors() const
{
    const Inst &t = terminator();
    switch (t.op) {
      case Op::Br: return {t.target, t.fallthrough};
      case Op::Jmp: return {t.target};
      default: return {};
    }
}

void
Function::computePreds()
{
    preds.assign(blocks.size(), {});
    for (const auto &bb : blocks)
        for (BlockId s : bb.successors())
            preds[s].push_back(bb.id);
}

void
Module::assignAddresses()
{
    uint64_t pc = 0x1000;
    for (auto &fn : functions) {
        fn.entryPc = pc;
        fn.numCondBranches = 0;
        for (auto &bb : fn.blocks) {
            for (auto &inst : bb.insts) {
                inst.pc = pc;
                pc += 4;
                if (inst.isCondBranch())
                    fn.numCondBranches++;
            }
        }
        // Pad between functions so PCs never collide across functions.
        pc = (pc + 0xff) & ~0xffULL;
    }
}

FuncId
Module::findFunction(const std::string &fname) const
{
    for (const auto &fn : functions)
        if (fn.name == fname)
            return fn.id;
    return kNoFunc;
}

ObjectId
Module::addObject(MemObject obj)
{
    obj.id = static_cast<ObjectId>(objects.size());
    objects.push_back(std::move(obj));
    return objects.back().id;
}

} // namespace ipds
