#ifndef IPDS_IR_IR_H
#define IPDS_IR_IR_H

/**
 * @file
 * The intermediate representation consumed by every other subsystem.
 *
 * Design notes, chosen to match the machine model of the paper:
 *
 *  - Virtual registers are single-assignment: every value-producing
 *    instruction defines a fresh vreg, so each vreg has exactly one
 *    defining instruction and def-use chains are a DAG. There are no phi
 *    nodes because...
 *  - ...program variables live in MEMORY. Locals get stack slots, globals
 *    get a data segment, and variable reads/writes are explicit Load /
 *    Store instructions (no mem2reg). This mirrors SUIF-era codegen and
 *    is precisely what makes the paper's memory-resident-variable
 *    correlation analysis meaningful and attacks on stack data effective.
 *  - Direct accesses to a named object at a constant offset (LoadVar /
 *    StoreVar) are distinguished from indirect accesses through a pointer
 *    register (LoadInd / StoreInd): the former are uniquely aliased by
 *    construction; the latter go through alias analysis.
 *  - All scalars are 64-bit signed integers; byte (i8) accesses exist for
 *    character buffers. Addresses are plain 64-bit integers into the VM's
 *    flat address space, so buffer overflows clobber real neighbours.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/builtins.h"

namespace ipds {

/** A virtual register id. Value 0 is reserved as "no register". */
using Vreg = uint32_t;
constexpr Vreg kNoVreg = 0;

/** Basic-block id, an index into Function::blocks. */
using BlockId = uint32_t;
constexpr BlockId kNoBlock = 0xffffffff;

/** Memory object id, an index into Module::objects. */
using ObjectId = uint32_t;
constexpr ObjectId kNoObject = 0xffffffff;

/** Function id, an index into Module::functions. */
using FuncId = uint32_t;
constexpr FuncId kNoFunc = 0xffffffff;

/** Access width of a memory operation. */
enum class MemSize : uint8_t
{
    I8 = 1,  ///< one byte (char)
    I64 = 8, ///< eight bytes (int / pointer)
};

/** Where a memory object lives. */
enum class ObjectKind : uint8_t
{
    Local,  ///< stack slot of a particular function
    Global, ///< mutable data segment
    Const,  ///< read-only data segment (string literals etc.)
};

/**
 * A named memory object: a scalar variable or an array/buffer.
 *
 * Arrays are modelled as a single abstract object; any indexed access is
 * an indirect access into it.
 */
struct MemObject
{
    ObjectId id = kNoObject;
    std::string name;
    ObjectKind kind = ObjectKind::Local;
    /** Owning function for locals; kNoFunc for globals/consts. */
    FuncId owner = kNoFunc;
    /** Total size in bytes. */
    uint32_t size = 8;
    /** True for arrays/buffers (indexed, multi-element). */
    bool isArray = false;
    /** Element width for arrays. */
    MemSize elem = MemSize::I64;
    /** True once any AddrOf of this object exists (set by analysis). */
    bool addressTaken = false;
    /** Initial bytes for Global/Const objects (zero-filled if shorter). */
    std::vector<uint8_t> init;
};

/** Instruction opcodes. */
enum class Op : uint8_t
{
    ConstInt, ///< dst = imm
    AddrOf,   ///< dst = &object + imm (object's base address)
    Load,     ///< dst = mem[object + imm], direct, width=size
    LoadInd,  ///< dst = mem[srcA], indirect, width=size
    Store,    ///< mem[object + imm] = srcA, direct, width=size
    StoreInd, ///< mem[srcA] = srcB, indirect, width=size
    Bin,      ///< dst = srcA <binop> srcB
    Cmp,      ///< dst = (srcA <pred> srcB) ? 1 : 0
    Br,       ///< if (srcA != 0) goto target (taken) else goto fallthrough
    Jmp,      ///< goto target
    Call,     ///< dst = callee(args...); builtin or user function
    Ret,      ///< return srcA (or nothing if srcA == kNoVreg)
    GetArg,   ///< dst = incoming argument #imm
};

/** Binary arithmetic operators for Op::Bin. */
enum class BinOp : uint8_t
{
    Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr,
};

/** Comparison predicates for Op::Cmp (signed). */
enum class Pred : uint8_t
{
    EQ, NE, LT, LE, GT, GE,
};

/** Return the predicate whose result is the logical negation of @p p. */
Pred negatePred(Pred p);

/** Printable names. */
const char *opName(Op op);
const char *binOpName(BinOp op);
const char *predName(Pred p);

/**
 * One IR instruction. A tagged struct rather than a class hierarchy:
 * instructions are stored by value in their block, keeping the IR compact
 * and cache-friendly for the simulator.
 */
struct Inst
{
    Op op = Op::Jmp;
    MemSize size = MemSize::I64; ///< width for memory ops
    BinOp bin = BinOp::Add;      ///< operator for Op::Bin
    Pred pred = Pred::EQ;        ///< predicate for Op::Cmp
    Builtin builtin = Builtin::None; ///< builtin callee for Op::Call

    Vreg dst = kNoVreg;  ///< defined vreg (kNoVreg if none)
    Vreg srcA = kNoVreg; ///< first operand
    Vreg srcB = kNoVreg; ///< second operand
    int64_t imm = 0;     ///< immediate (ConstInt value, offset, arg index)

    ObjectId object = kNoObject; ///< for AddrOf/Load/Store
    FuncId callee = kNoFunc;     ///< for Op::Call on user functions

    BlockId target = kNoBlock;      ///< Br taken target / Jmp target
    BlockId fallthrough = kNoBlock; ///< Br not-taken target

    std::vector<Vreg> args; ///< call arguments

    /** Code address assigned by Module::assignAddresses(). */
    uint64_t pc = 0;
    /** Source line for diagnostics (0 if unknown). */
    uint32_t line = 0;

    /** True for instructions that end a basic block. */
    bool isTerminator() const
    {
        return op == Op::Br || op == Op::Jmp || op == Op::Ret;
    }

    /** True for conditional branches (the unit of IPDS checking). */
    bool isCondBranch() const { return op == Op::Br; }
};

/** A straight-line sequence of instructions ending in one terminator. */
struct BasicBlock
{
    BlockId id = kNoBlock;
    std::string label;
    std::vector<Inst> insts;

    /** The terminator instruction. Panics if the block is empty. */
    const Inst &terminator() const;
    Inst &terminator();

    /** Successor block ids, in (taken, fallthrough) order for Br. */
    std::vector<BlockId> successors() const;
};

/**
 * A function: blocks, locals and signature. Block 0 is the entry block.
 */
struct Function
{
    FuncId id = kNoFunc;
    std::string name;
    uint32_t numParams = 0;
    bool returnsValue = false;
    std::vector<BasicBlock> blocks;
    /** Ids of this function's local MemObjects, in frame layout order. */
    std::vector<ObjectId> locals;
    /** One past the highest vreg id used in this function. */
    Vreg nextVreg = 1;

    /** Total conditional-branch count (filled by assignAddresses). */
    uint32_t numCondBranches = 0;
    /** Entry PC (filled by assignAddresses). */
    uint64_t entryPc = 0;

    /** Predecessor lists; call computePreds() after CFG mutation. */
    std::vector<std::vector<BlockId>> preds;
    void computePreds();
};

/**
 * A whole program: functions plus all memory objects.
 */
struct Module
{
    std::string name;
    std::vector<Function> functions;
    std::vector<MemObject> objects;

    /** Index of the entry function ("main"). */
    FuncId entry = kNoFunc;

    /**
     * Assign a code address to every instruction (4 bytes each, functions
     * laid out consecutively starting at 0x1000), count conditional
     * branches and record function entry PCs. Must run before table
     * construction, hashing or execution.
     */
    void assignAddresses();

    /** Find a function id by name; kNoFunc if absent. */
    FuncId findFunction(const std::string &fname) const;

    /** Create a new memory object and return its id. */
    ObjectId addObject(MemObject obj);

    /** Render the whole module as text (tests, correlation explorer). */
    std::string print() const;

    /**
     * Structural validation: terminators present and last, branch targets
     * in range, vregs defined before use within a block path-insensitively
     * (single-assignment check), object/function references valid.
     * Panics with a descriptive message on the first violation.
     */
    void verify() const;
};

} // namespace ipds

#endif // IPDS_IR_IR_H
