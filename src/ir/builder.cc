#include "ir/builder.h"

#include "support/diag.h"

namespace ipds {

FuncBuilder::FuncBuilder(Module &mod, const std::string &fname,
                         uint32_t num_params, bool returns_value)
    : mod(mod)
{
    Function f;
    f.id = static_cast<FuncId>(mod.functions.size());
    f.name = fname;
    f.numParams = num_params;
    f.returnsValue = returns_value;
    fid = f.id;
    mod.functions.push_back(std::move(f));
    cur = newBlock("entry");
}

Function &
FuncBuilder::fn()
{
    return mod.functions[fid];
}

ObjectId
FuncBuilder::addLocal(const std::string &lname, uint32_t size)
{
    MemObject obj;
    obj.name = fn().name + "." + lname;
    obj.kind = ObjectKind::Local;
    obj.owner = fid;
    obj.size = size;
    ObjectId oid = mod.addObject(std::move(obj));
    fn().locals.push_back(oid);
    return oid;
}

ObjectId
FuncBuilder::addArray(const std::string &lname, uint32_t bytes,
                      MemSize elem)
{
    MemObject obj;
    obj.name = fn().name + "." + lname;
    obj.kind = ObjectKind::Local;
    obj.owner = fid;
    obj.size = bytes;
    obj.isArray = true;
    obj.elem = elem;
    ObjectId oid = mod.addObject(std::move(obj));
    fn().locals.push_back(oid);
    return oid;
}

BlockId
FuncBuilder::newBlock(const std::string &label)
{
    BasicBlock bb;
    bb.id = static_cast<BlockId>(fn().blocks.size());
    bb.label = label;
    fn().blocks.push_back(std::move(bb));
    return fn().blocks.back().id;
}

void
FuncBuilder::setBlock(BlockId b)
{
    if (b >= fn().blocks.size())
        panic("FuncBuilder::setBlock: bad block %u", b);
    cur = b;
}

bool
FuncBuilder::blockTerminated() const
{
    const auto &bb = mod.functions[fid].blocks[cur];
    return !bb.insts.empty() && bb.insts.back().isTerminator();
}

Inst &
FuncBuilder::emit(Inst in)
{
    if (blockTerminated())
        panic("FuncBuilder: emitting into terminated bb%u of %s",
              cur, fn().name.c_str());
    in.line = curLine;
    auto &insts = fn().blocks[cur].insts;
    insts.push_back(std::move(in));
    return insts.back();
}

Vreg
FuncBuilder::freshVreg()
{
    return fn().nextVreg++;
}

Vreg
FuncBuilder::constInt(int64_t v)
{
    Inst in;
    in.op = Op::ConstInt;
    in.dst = freshVreg();
    in.imm = v;
    return emit(std::move(in)).dst;
}

Vreg
FuncBuilder::addrOf(ObjectId obj, int64_t offset)
{
    Inst in;
    in.op = Op::AddrOf;
    in.dst = freshVreg();
    in.object = obj;
    in.imm = offset;
    return emit(std::move(in)).dst;
}

Vreg
FuncBuilder::load(ObjectId obj, int64_t offset, MemSize size)
{
    Inst in;
    in.op = Op::Load;
    in.dst = freshVreg();
    in.object = obj;
    in.imm = offset;
    in.size = size;
    return emit(std::move(in)).dst;
}

Vreg
FuncBuilder::loadInd(Vreg addr, MemSize size)
{
    Inst in;
    in.op = Op::LoadInd;
    in.dst = freshVreg();
    in.srcA = addr;
    in.size = size;
    return emit(std::move(in)).dst;
}

Vreg
FuncBuilder::bin(BinOp op, Vreg a, Vreg b)
{
    Inst in;
    in.op = Op::Bin;
    in.bin = op;
    in.dst = freshVreg();
    in.srcA = a;
    in.srcB = b;
    return emit(std::move(in)).dst;
}

Vreg
FuncBuilder::cmp(Pred p, Vreg a, Vreg b)
{
    Inst in;
    in.op = Op::Cmp;
    in.pred = p;
    in.dst = freshVreg();
    in.srcA = a;
    in.srcB = b;
    return emit(std::move(in)).dst;
}

Vreg
FuncBuilder::getArg(uint32_t idx)
{
    Inst in;
    in.op = Op::GetArg;
    in.dst = freshVreg();
    in.imm = idx;
    return emit(std::move(in)).dst;
}

Vreg
FuncBuilder::call(FuncId callee, std::vector<Vreg> args, bool wants_value)
{
    Inst in;
    in.op = Op::Call;
    in.callee = callee;
    in.args = std::move(args);
    if (wants_value)
        in.dst = freshVreg();
    return emit(std::move(in)).dst;
}

Vreg
FuncBuilder::callBuiltin(Builtin b, std::vector<Vreg> args)
{
    Inst in;
    in.op = Op::Call;
    in.builtin = b;
    in.args = std::move(args);
    if (builtinEffects(b).returnsValue)
        in.dst = freshVreg();
    return emit(std::move(in)).dst;
}

void
FuncBuilder::store(ObjectId obj, Vreg val, int64_t offset, MemSize size)
{
    Inst in;
    in.op = Op::Store;
    in.object = obj;
    in.srcA = val;
    in.imm = offset;
    in.size = size;
    emit(std::move(in));
}

void
FuncBuilder::storeInd(Vreg addr, Vreg val, MemSize size)
{
    Inst in;
    in.op = Op::StoreInd;
    in.srcA = addr;
    in.srcB = val;
    in.size = size;
    emit(std::move(in));
}

void
FuncBuilder::br(Vreg cond, BlockId taken, BlockId not_taken)
{
    Inst in;
    in.op = Op::Br;
    in.srcA = cond;
    in.target = taken;
    in.fallthrough = not_taken;
    emit(std::move(in));
}

void
FuncBuilder::jmp(BlockId target)
{
    Inst in;
    in.op = Op::Jmp;
    in.target = target;
    emit(std::move(in));
}

void
FuncBuilder::ret(Vreg v)
{
    Inst in;
    in.op = Op::Ret;
    in.srcA = v;
    emit(std::move(in));
}

void
FuncBuilder::finish()
{
    for (auto &bb : fn().blocks) {
        if (bb.insts.empty() || !bb.insts.back().isTerminator()) {
            if (fn().returnsValue)
                panic("FuncBuilder: %s bb%u falls off the end of a "
                      "value-returning function",
                      fn().name.c_str(), bb.id);
            Inst in;
            in.op = Op::Ret;
            bb.insts.push_back(std::move(in));
        }
    }
    fn().computePreds();
}

} // namespace ipds
