#include "ir/ir.h"

#include <unordered_set>

#include "support/diag.h"

/**
 * @file
 * Structural IR validation. Run after the frontend and after any pass
 * that mutates the IR; a verifier failure is always a compiler bug.
 */

namespace ipds {

namespace {

void
verifyFunction(const Module &m, const Function &fn)
{
    if (fn.blocks.empty())
        panic("verify: function %s has no blocks", fn.name.c_str());

    std::unordered_set<Vreg> defined;

    for (const auto &bb : fn.blocks) {
        if (bb.id >= fn.blocks.size() || &fn.blocks[bb.id] != &bb)
            panic("verify: %s block id %u inconsistent",
                  fn.name.c_str(), bb.id);
        if (bb.insts.empty())
            panic("verify: %s bb%u is empty", fn.name.c_str(), bb.id);
        for (size_t i = 0; i < bb.insts.size(); i++) {
            const Inst &in = bb.insts[i];
            bool last = i + 1 == bb.insts.size();
            if (in.isTerminator() != last)
                panic("verify: %s bb%u inst %zu terminator misplaced",
                      fn.name.c_str(), bb.id, i);

            if (in.dst != kNoVreg) {
                if (in.dst >= fn.nextVreg)
                    panic("verify: %s vreg v%u >= nextVreg %u",
                          fn.name.c_str(), in.dst, fn.nextVreg);
                if (!defined.insert(in.dst).second)
                    panic("verify: %s v%u assigned twice",
                          fn.name.c_str(), in.dst);
            }

            switch (in.op) {
              case Op::AddrOf:
              case Op::Load:
              case Op::Store:
                if (in.object >= m.objects.size())
                    panic("verify: %s references bad object %u",
                          fn.name.c_str(), in.object);
                if (in.op == Op::Store &&
                    m.objects[in.object].kind == ObjectKind::Const) {
                    panic("verify: %s stores to const object %s",
                          fn.name.c_str(),
                          m.objects[in.object].name.c_str());
                }
                break;
              case Op::Br:
                if (in.target >= fn.blocks.size() ||
                    in.fallthrough >= fn.blocks.size()) {
                    panic("verify: %s bb%u branch target out of range",
                          fn.name.c_str(), bb.id);
                }
                break;
              case Op::Jmp:
                if (in.target >= fn.blocks.size())
                    panic("verify: %s bb%u jump target out of range",
                          fn.name.c_str(), bb.id);
                break;
              case Op::Call:
                if (in.builtin == Builtin::None &&
                    in.callee >= m.functions.size()) {
                    panic("verify: %s calls bad function id %u",
                          fn.name.c_str(), in.callee);
                }
                if (in.builtin != Builtin::None) {
                    const auto &fx = builtinEffects(in.builtin);
                    if (in.args.size() != fx.numParams)
                        panic("verify: %s: %s expects %u args, got %zu",
                              fn.name.c_str(), builtinName(in.builtin),
                              fx.numParams, in.args.size());
                }
                break;
              case Op::GetArg:
                if (in.imm < 0 ||
                    static_cast<uint32_t>(in.imm) >= fn.numParams) {
                    panic("verify: %s getarg %lld out of range",
                          fn.name.c_str(),
                          static_cast<long long>(in.imm));
                }
                break;
              default:
                break;
            }
        }
    }

    // Second pass: every use must be a defined vreg. Because vregs are
    // single-assignment and the builder only references previously
    // created values, set membership is sufficient.
    auto checkUse = [&](Vreg v, BlockId b) {
        if (v != kNoVreg && !defined.count(v))
            panic("verify: %s bb%u uses undefined v%u",
                  fn.name.c_str(), b, v);
    };
    for (const auto &bb : fn.blocks) {
        for (const auto &in : bb.insts) {
            checkUse(in.srcA, bb.id);
            checkUse(in.srcB, bb.id);
            for (Vreg a : in.args)
                checkUse(a, bb.id);
        }
    }

    for (ObjectId oid : fn.locals) {
        if (oid >= m.objects.size())
            panic("verify: %s bad local object id %u",
                  fn.name.c_str(), oid);
        const auto &obj = m.objects[oid];
        if (obj.kind != ObjectKind::Local || obj.owner != fn.id)
            panic("verify: %s local %s has wrong kind/owner",
                  fn.name.c_str(), obj.name.c_str());
    }
}

} // namespace

void
Module::verify() const
{
    if (entry == kNoFunc || entry >= functions.size())
        panic("verify: module %s has no entry function", name.c_str());
    for (const auto &fn : functions) {
        if (fn.id >= functions.size() || &functions[fn.id] != &fn)
            panic("verify: function id %u inconsistent", fn.id);
        verifyFunction(*this, fn);
    }
    for (size_t i = 0; i < objects.size(); i++) {
        if (objects[i].id != i)
            panic("verify: object id %zu inconsistent", i);
        if (objects[i].size == 0)
            panic("verify: object %s has zero size",
                  objects[i].name.c_str());
    }
}

} // namespace ipds
