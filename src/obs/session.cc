#include "obs/session.h"

#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>

#include "obs/names.h"
#include "replay/replay.h"
#include "replay/snapshot.h"
#include "serve/server.h"
#include "support/diag.h"
#include "support/threadpool.h"

#include <algorithm>

namespace ipds {

Session::Builder
Session::builder()
{
    return Builder();
}

Session
Session::Builder::build()
{
    if (!o.prog)
        fatal("Session: no program() configured");
    if (o.shards > 256)
        fatal("Session: at most 256 shards (got %u)", o.shards);
    if (o.shards > 1 && !o.extraObservers.empty())
        fatal("Session: observe() requires a single shard (observers "
              "would be shared across shard threads)");
    if (o.planCount > 1)
        fatal("Session: plans are mutually exclusive — configure "
              "exactly one plan()");
    if (!o.capturePath.empty() && !o.replayPath.empty())
        fatal("Session: captureTo() and replayFrom() are mutually "
              "exclusive");
    if (o.isServe) {
        if (o.servePath.empty() && o.serveTcpHost.empty())
            fatal("Session: a ServePlan needs a listener — a unix "
                  "socket path and/or tcp(host, port)");
        // Only reachable by mixing plan(ServePlan) with the
        // deprecated shims; the plan types themselves cannot express
        // these combinations.
        if (!o.capturePath.empty() || !o.replayPath.empty())
            fatal("Session: a ServePlan is mutually exclusive with "
                  "capture/replay");
        if (o.hasTamper || !o.extraTampers.empty() || o.hasFault ||
            !o.extraObservers.empty())
            fatal("Session: a ServePlan run has no VM — tamper(), "
                  "faultPlan() and observe() do not apply");
    }
    if (!o.replayPath.empty()) {
        if (o.hasFault)
            fatal("Session: replayFrom() cannot combine with "
                  "faultPlan() — faults are captured into the trace "
                  "and reproduced from it");
        if (o.hasTamper || !o.extraTampers.empty())
            fatal("Session: replayFrom() cannot combine with "
                  "tamper() (the tamper's effects are already in the "
                  "recorded stream)");
        if (!o.extraObservers.empty())
            fatal("Session: replayFrom() cannot combine with "
                  "observe() — replay has no VM to observe");
        if ((o.replayParallel ? 1 : 0) +
                (o.replaySeekSessionSet ? 1 : 0) +
                (o.replaySeekChunkSet ? 1 : 0) > 1)
            fatal("Session: ReplayPlan parallel(), seekSession() and "
                  "seekChunk() are mutually exclusive");
        // Recipe checks that need the capture's geometry read just
        // the header now, so a bad plan fails at build() instead of
        // mid-replay.
        if ((o.replayParallel && o.replayWorkers > 0) ||
            o.replaySeekChunkSet) {
            replay::TraceMeta m =
                replay::readTraceHeader(o.replayPath);
            if (o.replayParallel && m.hasTiming &&
                o.replayWorkers > m.shards)
                fatal("Session: parallel(%u) exceeds the capture "
                      "shard geometry — a timing trace parallelizes "
                      "per capture shard and '%s' was recorded with "
                      "%u shard(s)",
                      o.replayWorkers, o.replayPath.c_str(),
                      m.shards);
            if (o.replaySeekChunkSet && m.hasTiming)
                fatal("Session: seekChunk() is not available for "
                      "timing traces (the CPU scoreboard is not "
                      "snapshotted) — use seekSession()");
        }
    }
    if (!o.detectorExplicit && o.useTiming)
        o.detectorOn = o.timingCfg.ipdsEnabled;
    if (!o.recordTraceExplicit)
        o.recordTrace = o.sessions == 1;
    if (o.hasFault && o.useTiming)
        o.fault.applyTo(o.timingCfg);
    return Session(std::move(o));
}

Session::Session(Options o)
    : opt(std::move(o))
{}

/** Everything one shard produces; merged in shard order at the join. */
struct Session::ShardOut
{
    DetectorStats det;
    TimingStats tim;
    FaultStats fault;
    std::vector<Alarm> alarms;
    obs::MetricsRegistry reg;
    std::vector<obs::TraceEvent> trace;
    uint64_t traceDropped = 0;
    uint64_t runs = 0;
    uint64_t steps = 0;
    uint64_t inputEvents = 0;
    uint64_t vmInstructions = 0;
    uint64_t vmBlocks = 0;
    uint64_t vmFlushes = 0;
    RunResult firstResult;
    bool hasFirst = false;
};

void
Session::runShard(uint32_t shard, ShardOut &out,
                  replay::TraceWriter *capture) const
{
    const uint32_t begin = shard * opt.sessions / opt.shards;
    const uint32_t end = (shard + 1) * opt.sessions / opt.shards;

    obs::Tracer tracer(opt.traceCategories, opt.traceCapacity);
    tracer.setShard(static_cast<uint8_t>(shard));
    obs::Tracer *trc =
        opt.traceCategories != 0 ? &tracer : nullptr;

    std::optional<CpuModel> cpu;
    if (opt.useTiming) {
        cpu.emplace(opt.timingCfg);
        if (trc)
            cpu->setTracer(trc);
    }

    // One predecode shared by every session in the shard; per-run Vm
    // construction then skips the decode cache's validation walk.
    auto dec = decodeCached(opt.prog->mod);

    for (uint32_t s = begin; s < end; s++) {
        Vm vm(opt.prog->mod, dec);
        vm.setInputs(opt.inputs);
        vm.setFuel(opt.fuel);
        vm.setRecordTrace(opt.recordTrace);
        if (trc)
            vm.setTracer(trc, s);
        if (opt.hasTamper)
            vm.setTamper(opt.tamperSpec);
        for (const TamperSpec &spec : opt.extraTampers)
            vm.addTamper(spec);

        // Capture brackets the session; when the ring-fault filter is
        // armed below, the same parameters go into the record so
        // replay re-arms it identically.
        if (capture) {
            if (opt.hasFault && cpu)
                capture->beginSession(
                    s, opt.fault.ringDropPermille,
                    opt.fault.ringDupPermille,
                    opt.fault.seed ^ (s * 0x9e3779b97f4a7c15ULL));
            else
                capture->beginSession(s);
        }

        // Detector first: its requests must precede the timing
        // model's commit-point drain of the same instruction.
        Detector det(*opt.prog);
        if (opt.detectorOn) {
            if (cpu)
                det.setRequestRing(&cpu->requestRing());
            if (trc)
                det.setTracer(trc);
        }

        // Snapshot provider: the writer invokes it inside its
        // function-event hooks, where the detector/CpuModel state
        // corresponds exactly to the bytes recorded so far (the
        // recorder attaches last). Re-armed per session so the lambda
        // sees this session's detector.
        if (capture)
            capture->setSnapshotProvider(
                [&](std::vector<uint8_t> &blob) {
                    replay::SnapshotData sd;
                    if (opt.detectorOn) {
                        sd.hasDetector = true;
                        det.captureState(sd.det);
                    }
                    if (cpu) {
                        sd.hasTiming = true;
                        sd.tim = cpu->stats();
                        cpu->ipdsEngine().captureState(sd.engine);
                    }
                    if (!sd.hasDetector && !sd.hasTiming)
                        return; // nothing to resume from
                    replay::encodeSnapshot(sd, blob);
                });

        // Fault injection interposes: the injector is the Vm's only
        // observer and forwards to the same targets in the same
        // order, so faults land at identical commit points in every
        // delivery mode. Per-session salts/seeds keep aggregates a
        // pure function of the session index.
        FaultInjector inj(opt.fault, s);
        if (opt.hasFault) {
            if (trc)
                inj.setTracer(trc);
            if (opt.detectorOn) {
                inj.addTarget(&det);
                inj.addDetector(&det);
            }
            if (cpu) {
                inj.addTarget(&*cpu);
                inj.setCpu(&*cpu);
                cpu->requestRing().setFault(
                    opt.fault.ringDropPermille,
                    opt.fault.ringDupPermille,
                    opt.fault.seed ^ (s * 0x9e3779b97f4a7c15ULL));
            }
            for (ExecObserver *obs : opt.extraObservers)
                inj.addTarget(obs);
            // The recorder is the LAST target, so it sees the stream
            // every real consumer saw; the event sink puts the
            // injector's out-of-band faults into the record at their
            // commit points.
            if (capture) {
                inj.addTarget(capture);
                inj.setEventSink(capture);
            }
            vm.addObserver(&inj);
            for (const TamperSpec &spec :
                 opt.fault.memTamperSpecs(s))
                vm.addTamper(spec);
        } else {
            if (opt.detectorOn)
                vm.addObserver(&det);
            if (cpu)
                vm.addObserver(&*cpu);
            for (ExecObserver *obs : opt.extraObservers)
                vm.addObserver(obs);
            if (capture)
                vm.addObserver(capture);
        }

        RunResult r = vm.run();
        uint64_t firedTampers = 0;
        for (const TamperRecord &tr : r.faultTampers)
            firedTampers += tr.fired ? 1 : 0;
        if (opt.hasFault) {
            out.fault.merge(inj.stats());
            out.fault.memTampers += firedTampers;
        }
        if (capture)
            capture->endSession(r.steps, r.inputEventCount,
                                firedTampers,
                                vm.vmStats().instructions,
                                vm.vmStats().blocks,
                                vm.vmStats().eventBatchFlushes);
        out.runs++;
        out.steps += r.steps;
        out.inputEvents += r.inputEventCount;
        out.vmInstructions += vm.vmStats().instructions;
        out.vmBlocks += vm.vmStats().blocks;
        out.vmFlushes += vm.vmStats().eventBatchFlushes;
        if (opt.detectorOn) {
            out.det.merge(det.stats());
            out.alarms.insert(out.alarms.end(), det.alarms().begin(),
                              det.alarms().end());
        }
        if (s == 0) {
            out.firstResult = std::move(r);
            out.hasFirst = true;
        }
    }

    if (cpu) {
        out.tim = cpu->stats();
        if (opt.hasFault) {
            out.fault.ringDrops =
                cpu->requestRing().faultDropCount();
            out.fault.ringDups = cpu->requestRing().faultDupCount();
        }
    }
    out.traceDropped = tracer.dropped();
    out.trace = tracer.events();

    // Per-shard registry: identical registration order in every shard
    // (and every run), so the shard-order merge below is deterministic
    // and the exported JSON shape is stable.
    namespace n = obs::names;
    out.reg.add(out.reg.counter(n::kSessRuns), out.runs);
    out.reg.add(out.reg.counter(n::kSessSteps), out.steps);
    out.reg.add(out.reg.counter(n::kSessInputEvents),
                out.inputEvents);
    out.reg.add(out.reg.counter(n::kSessTraceDropped),
                out.traceDropped);
    out.reg.add(out.reg.counter(n::kVmInstructions),
                out.vmInstructions);
    out.reg.add(out.reg.counter(n::kVmBlocks), out.vmBlocks);
    out.reg.add(out.reg.counter(n::kVmEventBatchFlushes),
                out.vmFlushes);
    if (opt.detectorOn)
        obs::exportDetectorStats(out.det, out.alarms.size(), out.reg);
    if (opt.useTiming)
        obs::exportTimingStats(out.tim, out.reg);
    if (opt.hasFault)
        obs::exportFaultStats(out.fault, out.reg);
}

Session &
Session::run()
{
    if (opt.isServe || !opt.servePath.empty())
        return runServe();
    if (!opt.replayPath.empty())
        return runReplay();

    alarmList.clear();
    detStat = {};
    timStat = {};
    fltStat = {};
    firstResult = {};
    registry = {};
    traceLog.clear();
    traceLost = 0;

    // Capture: the header is fully known up front, so it streams out
    // first; a single shard then writes chunks straight to the file,
    // while sharded captures buffer per shard and concatenate in
    // shard order at the join (chunk session ids stay monotonic).
    const bool capturing = !opt.capturePath.empty();
    std::ofstream capFile;
    uint64_t capHeaderBytes = 0;
    uint64_t capSnapsWritten = 0;
    std::vector<std::unique_ptr<std::ostringstream>> capBufs;
    std::vector<std::unique_ptr<replay::TraceWriter>> capWriters;
    if (capturing) {
        capFile.open(opt.capturePath,
                     std::ios::binary | std::ios::trunc);
        if (!capFile)
            fatal("Session: cannot open capture file '%s'",
                  opt.capturePath.c_str());
        replay::TraceMeta meta;
        meta.moduleHash = replay::moduleContentHash(opt.prog->mod);
        meta.sessions = opt.sessions;
        meta.shards = opt.shards;
        meta.hasTiming = opt.useTiming;
        meta.timing = opt.timingCfg;
        if (opt.useTiming)
            meta.flags |=
                replay::kFlagFullStream | replay::kFlagTiming;
        if (opt.hasFault)
            meta.flags |= replay::kFlagFault;
        if (opt.detectorOn)
            meta.flags |= replay::kFlagDetector;
        std::vector<uint8_t> hdr(replay::headerBytes(meta));
        replay::encodeHeader(meta, hdr.data());
        capFile.write(reinterpret_cast<const char *>(hdr.data()),
                      static_cast<std::streamsize>(hdr.size()));
        capHeaderBytes = hdr.size();
        auto mode = opt.useTiming
            ? replay::TraceWriter::Mode::Full
            : replay::TraceWriter::Mode::BranchesOnly;
        for (uint32_t s = 0; s < opt.shards; s++) {
            std::ostream *sink = &capFile;
            if (opt.shards > 1) {
                capBufs.push_back(
                    std::make_unique<std::ostringstream>());
                sink = capBufs.back().get();
            }
            capWriters.push_back(
                std::make_unique<replay::TraceWriter>(*sink, mode));
            capWriters.back()->snapshotEvery(
                opt.captureSnapshotEvery);
        }
    }
    auto captureFor = [&](uint32_t s) {
        return capturing ? capWriters[s].get() : nullptr;
    };

    std::vector<ShardOut> outs(opt.shards);
    if (opt.shards == 1 && opt.threads == 1) {
        runShard(0, outs[0], captureFor(0));
    } else {
        ThreadPool pool(opt.threads);
        pool.parallelFor(opt.shards, [&](uint32_t s) {
            runShard(s, outs[s], captureFor(s));
        });
    }

    if (capturing) {
        for (uint32_t s = 0; s < opt.shards; s++)
            capWriters[s]->finish();
        if (opt.shards > 1)
            for (uint32_t s = 0; s < opt.shards; s++) {
                const std::string chunkBytes = capBufs[s]->str();
                capFile.write(chunkBytes.data(),
                              static_cast<std::streamsize>(
                                  chunkBytes.size()));
            }
        // v2 chunk-index footer: each writer's entries carry
        // stream-relative offsets; rebase into file offsets as the
        // shard streams concatenate in shard order behind the header.
        uint64_t fileOff = capHeaderBytes;
        std::vector<replay::ChunkIndexEntry> idx;
        for (uint32_t s = 0; s < opt.shards; s++) {
            for (replay::ChunkIndexEntry e :
                 capWriters[s]->indexEntries()) {
                e.fileOffset += fileOff;
                idx.push_back(e);
            }
            fileOff += capWriters[s]->bytesWritten();
            capSnapsWritten += capWriters[s]->snapshotsWritten();
        }
        std::vector<uint8_t> footer;
        replay::appendIndexFooter(footer, idx.data(), idx.size(),
                                  fileOff);
        capFile.write(reinterpret_cast<const char *>(footer.data()),
                      static_cast<std::streamsize>(footer.size()));
        capFile.close();
        if (!capFile)
            fatal("Session: error writing capture file '%s'",
                  opt.capturePath.c_str());
    }

    // Deterministic join: merge in shard order, independent of which
    // worker ran which shard.
    for (ShardOut &out : outs) {
        detStat.merge(out.det);
        timStat.merge(out.tim);
        fltStat.merge(out.fault);
        alarmList.insert(alarmList.end(), out.alarms.begin(),
                         out.alarms.end());
        registry.merge(out.reg);
        traceLog.insert(traceLog.end(), out.trace.begin(),
                        out.trace.end());
        traceLost += out.traceDropped;
        if (out.hasFirst)
            firstResult = std::move(out.firstResult);
    }
    if (capturing)
        registry.add(
            registry.counter(obs::names::kReplaySnapshotsWritten),
            capSnapsWritten);
    return *this;
}

Session &
Session::runReplay()
{
    alarmList.clear();
    detStat = {};
    timStat = {};
    fltStat = {};
    firstResult = {};
    registry = {};
    traceLog.clear();
    traceLost = 0;

    const bool wantIndex = opt.replayParallel ||
        opt.replaySeekSessionSet || opt.replaySeekChunkSet;
    replay::IndexedLoad idxInfo;
    replay::TraceFile tf = wantIndex
        ? replay::TraceFile::loadIndexed(opt.replayPath, &idxInfo)
        : replay::TraceFile::load(opt.replayPath);
    replay::ReplayEngine eng(tf, *opt.prog);
    const replay::TraceMeta &m = tf.meta();
    const std::vector<replay::ChunkRef> &chunks = tf.chunks();

    const uint64_t indexMissing =
        (wantIndex ? idxInfo.usedIndex : tf.hasIndexFooter()) ? 0 : 1;
    uint64_t seeks = 0;
    uint64_t snapshotsUsed = 0;
    uint64_t workersUsed = 1;

    // Chunks sit in non-decreasing session order (shard streams
    // concatenate in shard order), so a session's chunks are one
    // contiguous range.
    auto firstChunkOf = [&](uint32_t sess) {
        return static_cast<size_t>(
            std::lower_bound(chunks.begin(), chunks.end(), sess,
                             [](const replay::ChunkRef &c,
                                uint32_t s) {
                                 return c.session < s;
                             }) -
            chunks.begin());
    };

    // Every mode funnels its results into per-capture-shard slots and
    // through the same registry block below, so the export shape (and
    // the serve mirror) never forks.
    std::vector<replay::ReplayShardResult> outs;
    auto t0 = std::chrono::steady_clock::now();

    if (opt.replaySeekSessionSet || opt.replaySeekChunkSet) {
        // ---- seek: one span cursor over the trace tail; earlier
        // chunks are never read (the chunk meter proves the skip).
        outs.resize(1);
        seeks = 1;
        if (opt.replaySeekSessionSet) {
            uint32_t s = opt.replaySeekSession;
            if (s >= m.sessions)
                fatal("Session: seekSession(%u) out of range (trace "
                      "has %u sessions)",
                      s, m.sessions);
            eng.replayChunkRange(firstChunkOf(s), chunks.size(), s,
                                 m.sessions, outs[0]);
        } else {
            if (opt.replaySeekChunk >= chunks.size())
                fatal("Session: seekChunk(%llu) out of range (trace "
                      "has %zu chunks)",
                      static_cast<unsigned long long>(
                          opt.replaySeekChunk),
                      chunks.size());
            if (m.hasTiming)
                fatal("Session: seekChunk() is not available for "
                      "timing traces (the CPU scoreboard is not "
                      "snapshotted) — use seekSession()");
            const size_t k =
                static_cast<size_t>(opt.replaySeekChunk);
            const uint32_t sess = chunks[k].session;
            size_t sessStart = k;
            while (sessStart > 0 &&
                   chunks[sessStart - 1].session == sess)
                sessStart--;

            // Nearest preceding snapshot-opened chunk of the same
            // session; a damaged snapshot degrades to replaying the
            // session from its start.
            size_t from = sessStart;
            bool resumed = false;
            replay::SnapshotData sd;
            for (size_t i = k + 1; i-- > sessStart;) {
                if (!(chunks[i].flags & replay::kChunkHasSnapshot))
                    continue;
                try {
                    if (tf.crcDeferred())
                        tf.checkChunkCrc(chunks[i]);
                    replay::TraceReader r(tf.payload(chunks[i]),
                                          chunks[i].payloadLen);
                    if (r.tag() != replay::Tag::Snapshot)
                        fatal("trace: snapshot flag without a "
                              "snapshot record");
                    uint64_t len = r.var();
                    const uint8_t *blob =
                        r.bytes(static_cast<size_t>(len));
                    replay::decodeSnapshot(
                        blob, static_cast<size_t>(len), sd);
                    from = i;
                    resumed = true;
                } catch (const FatalError &) {
                    // fall back to the session start
                }
                break;
            }

            replay::ReplayEngine::ShardCursor cur(eng, sess,
                                                  m.sessions);
            if (resumed && sd.hasDetector && from > sessStart) {
                cur.resume(sess, sd.det);
                snapshotsUsed = 1;
            } else {
                from = sessStart;
            }
            for (size_t i = from; i < chunks.size(); i++) {
                if (tf.crcDeferred())
                    tf.checkChunkCrc(chunks[i]);
                cur.feed(chunks[i], tf.payload(chunks[i]));
            }
            cur.finish();
            outs[0] = std::move(cur.result());
        }
    } else if (opt.replayParallel && idxInfo.usedIndex) {
        // ---- parallel: detector-only traces split per session (each
        // session's detector starts fresh); timing traces split per
        // capture shard (the CpuModel persists across a shard's
        // sessions). Units merge back into capture-shard slots in
        // session order, so every aggregate is bit-identical to the
        // sequential replay at any worker count.
        struct Unit
        {
            size_t chunkBegin, chunkEnd;
            uint32_t sessBegin, sessEnd;
        };
        std::vector<Unit> units;
        if (m.hasTiming) {
            for (uint32_t s = 0; s < m.shards; s++) {
                uint32_t b = static_cast<uint32_t>(
                    uint64_t(s) * m.sessions / m.shards);
                uint32_t e = static_cast<uint32_t>(
                    uint64_t(s + 1) * m.sessions / m.shards);
                if (b == e)
                    continue;
                units.push_back(
                    {firstChunkOf(b), firstChunkOf(e), b, e});
            }
        } else {
            for (uint32_t s = 0; s < m.sessions; s++)
                units.push_back(
                    {firstChunkOf(s), firstChunkOf(s + 1), s, s + 1});
        }

        unsigned workers = opt.replayWorkers
            ? opt.replayWorkers
            : ThreadPool::defaultWorkers();
        if (workers > units.size())
            workers = static_cast<unsigned>(units.size());
        if (workers == 0)
            workers = 1;
        workersUsed = workers;

        std::vector<replay::ReplayShardResult> unitOuts(units.size());
        {
            ThreadPool pool(workers);
            pool.parallelFor(
                static_cast<uint32_t>(units.size()),
                [&](uint32_t u) {
                    const Unit &w = units[u];
                    eng.replayChunkRange(w.chunkBegin, w.chunkEnd,
                                         w.sessBegin, w.sessEnd,
                                         unitOuts[u]);
                });
        }

        outs.resize(m.shards);
        size_t u = 0;
        for (uint32_t s = 0; s < m.shards; s++) {
            const uint32_t e = static_cast<uint32_t>(
                uint64_t(s + 1) * m.sessions / m.shards);
            replay::ReplayShardResult &dst = outs[s];
            for (; u < units.size() && units[u].sessEnd <= e; u++) {
                replay::ReplayShardResult &src = unitOuts[u];
                dst.det.merge(src.det);
                dst.tim.merge(src.tim);
                dst.fault.merge(src.fault);
                dst.alarms.insert(dst.alarms.end(),
                                  src.alarms.begin(),
                                  src.alarms.end());
                dst.runs += src.runs;
                dst.steps += src.steps;
                dst.inputEvents += src.inputEvents;
                dst.vmInstructions += src.vmInstructions;
                dst.vmBlocks += src.vmBlocks;
                dst.vmFlushes += src.vmFlushes;
                dst.chunks += src.chunks;
                dst.bytes += src.bytes;
                dst.events += src.events;
                dst.snapshots += src.snapshots;
            }
        }
    } else {
        // ---- sequential (also the v1 / damaged-footer fallback).
        // Shard partition comes from the capture (aggregates are a
        // pure function of (sessions, shards)); threads only selects
        // replay parallelism, joined in shard order like the live
        // path.
        outs.resize(m.shards);
        if (m.shards == 1 && opt.threads == 1) {
            eng.replayShard(0, outs[0]);
        } else {
            ThreadPool pool(opt.threads);
            pool.parallelFor(m.shards, [&](uint32_t s) {
                eng.replayShard(s, outs[s]);
            });
        }
    }
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

    namespace n = obs::names;
    uint64_t totalEvents = 0;
    for (const replay::ReplayShardResult &r : outs) {
        detStat.merge(r.det);
        timStat.merge(r.tim);
        fltStat.merge(r.fault);
        alarmList.insert(alarmList.end(), r.alarms.begin(),
                         r.alarms.end());
        totalEvents += r.events;

        // Per-shard registry in the SAME registration order as the
        // live path, so the shared metrics merge to identical values;
        // the replay-only meters append after.
        obs::MetricsRegistry reg;
        reg.add(reg.counter(n::kSessRuns), r.runs);
        reg.add(reg.counter(n::kSessSteps), r.steps);
        reg.add(reg.counter(n::kSessInputEvents), r.inputEvents);
        reg.add(reg.counter(n::kSessTraceDropped), 0);
        reg.add(reg.counter(n::kVmInstructions), r.vmInstructions);
        reg.add(reg.counter(n::kVmBlocks), r.vmBlocks);
        reg.add(reg.counter(n::kVmEventBatchFlushes), r.vmFlushes);
        if (m.detectorOn())
            obs::exportDetectorStats(r.det, r.alarms.size(), reg);
        if (m.hasTiming)
            obs::exportTimingStats(r.tim, reg);
        if (m.faultCaptured())
            obs::exportFaultStats(r.fault, reg);
        reg.add(reg.counter(n::kReplayChunks), r.chunks);
        reg.add(reg.counter(n::kReplayBytes), r.bytes);
        reg.add(reg.counter(n::kReplayEvents), r.events);
        reg.add(reg.counter(n::kReplaySnapshotsWritten), r.snapshots);
        registry.merge(reg);
    }
    registry.add(registry.counter(n::kReplayBytes),
                 replay::headerBytes(m) + tf.indexBytes());
    registry.add(registry.counter(n::kReplaySessions), m.sessions);
    registry.add(registry.counter(n::kReplayCrcFailures), 0);
    registry.add(registry.counter(n::kReplayTruncatedChunks), 0);
    registry.add(registry.counter(n::kReplayVersionMismatches), 0);
    registry.add(registry.counter(n::kReplayIndexMissing),
                 indexMissing);
    registry.add(registry.counter(n::kReplaySeeks), seeks);
    registry.add(registry.counter(n::kReplaySnapshotsUsed),
                 snapshotsUsed);
    registry.set(registry.gauge(n::kReplayWorkers), workersUsed);
    registry.set(registry.gauge(n::kReplayEventsPerSec),
                 secs > 0.0 ? static_cast<uint64_t>(totalEvents / secs)
                            : 0);
    return *this;
}

// Held via shared_ptr so stopServing() from another thread stays safe
// while the Session object itself may be moved; srv is only non-null
// for the duration of runServe()'s serving window.
struct Session::ServeHandle
{
    std::mutex m;
    serve::Server *srv = nullptr;
};

void
Session::stopServing()
{
    std::shared_ptr<ServeHandle> h = serveHandle;
    if (!h)
        return;
    std::lock_guard<std::mutex> lk(h->m);
    if (h->srv)
        h->srv->requestStop();
}

Session &
Session::runServe()
{
    alarmList.clear();
    detStat = {};
    timStat = {};
    fltStat = {};
    firstResult = {};
    registry = {};
    traceLog.clear();
    traceLost = 0;
    serveStatszText.clear();

    serve::ServerConfig cfg;
    cfg.socketPath = opt.servePath;
    cfg.tcpHost = opt.serveTcpHost;
    cfg.tcpPort = opt.serveTcpPort;
    cfg.threads = opt.threads;
    if (opt.serveMaxFrame)
        cfg.maxFrameBytes = opt.serveMaxFrame;
    if (opt.servePendingCap)
        cfg.pendingChunkCap = opt.servePendingCap;

    serve::Server srv(*opt.prog, cfg);
    for (const CompiledProgram *extra : opt.serveExtras)
        srv.registerModule(*extra);
    serveHandle = std::make_shared<ServeHandle>();
    {
        std::lock_guard<std::mutex> lk(serveHandle->m);
        serveHandle->srv = &srv;
    }
    srv.start();
    // stopAfter == 0 means serve until stopServing(); waitForStreams
    // returns early once the server stops.
    srv.waitForStreams(opt.serveStopAfter ? opt.serveStopAfter
                                          : UINT64_MAX);
    {
        std::lock_guard<std::mutex> lk(serveHandle->m);
        serveHandle->srv = nullptr;
    }
    serveHandle.reset();
    srv.stopAndJoin();
    serveStatszText = srv.statszText();

    // Deterministic join, like the live and replay paths: tenants in
    // name order (snapshot() sorts), streams in completion order
    // within each tenant.
    for (const serve::TenantSnapshot &t : srv.snapshot()) {
        detStat.merge(t.det);
        timStat.merge(t.tim);
        fltStat.merge(t.fault);
        alarmList.insert(alarmList.end(), t.alarms.begin(),
                         t.alarms.end());
        registry.merge(t.reg);
    }
    return *this;
}

} // namespace ipds
