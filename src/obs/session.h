#ifndef IPDS_OBS_SESSION_H
#define IPDS_OBS_SESSION_H

/**
 * @file
 * The Session facade: the one sanctioned way to assemble an IPDS run.
 *
 * Before this facade, every harness hand-wired the same four classes —
 * compileAndAnalyze → Vm → Detector → CpuModel — in its own slightly
 * different order, with its own ad-hoc counters. Session owns that
 * wiring, plus the observability subsystem's lifetimes (one
 * MetricsRegistry and one Tracer per run), and scales from a
 * single-session embedding:
 *
 *   ipds::Session s = ipds::Session::builder()
 *                         .program(prog)
 *                         .inputs({"guest", "hello"})
 *                         .build();
 *   s.run();
 *   if (s.alarmed()) { ... }
 *   std::puts(s.metricsJson().c_str());
 *
 * to a sharded multi-session benchmark:
 *
 *   ipds::Session s = ipds::Session::builder()
 *                         .program(prog)
 *                         .inputs(wl.benignInputs)
 *                         .timing(table1Config())
 *                         .sessions(300).shards(8).threads(0)
 *                         .build();
 *   TimingStats t = s.run().timingStats();
 *
 * What a run DOES with the event stream is one typed plan:
 *
 *   - ExecPlan    — execute the VM (optionally tampered / fault-
 *                   injected / observed);
 *   - CapturePlan — execute AND record an IPDS trace file;
 *   - ReplayPlan  — re-detect a recorded trace, no VM in the loop;
 *   - ServePlan   — accept recorded streams over a socket and detect
 *                   at ingest (the multi-tenant detection service).
 *
 *   ipds::Session cap = ipds::Session::builder()
 *                           .program(prog).inputs(in)
 *                           .plan(ipds::CapturePlan("run.ipds")
 *                                     .exec(ipds::ExecPlan()
 *                                               .tamper(spec)))
 *                           .build();
 *
 * The plan types make incompatible recipes unrepresentable: a
 * ReplayPlan has nowhere to hang a tamper() (the tamper's effects are
 * already in the recorded stream), a ServePlan has no observer hook.
 * The pre-plan mode setters (tamper(), faultPlan(), recordTrace(),
 * observe(), captureTo(), replayFrom()) remain as deprecated shims
 * that forward into the equivalent plan; mixing them badly still
 * fails at build() with the original diagnostics.
 *
 * Sharding semantics match the fig9 harness exactly: the session
 * stream splits into a FIXED number of shards (never derived from the
 * thread count), each shard owns its CpuModel / detectors / metrics /
 * tracer, and shard outputs merge in shard order at the join — so
 * every aggregate, metric and trace is bit-identical for any
 * `threads` value.
 *
 * The layered headers (vm/vm.h, ipds/detector.h, timing/cpu.h) remain
 * public for advanced embeddings; see the umbrella header ipds/ipds.h.
 */

#include <memory>
#include <string>
#include <vector>

#include "core/program.h"
#include "inject/fault.h"
#include "ipds/detector.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "replay/writer.h"
#include "timing/config.h"
#include "timing/cpu.h"
#include "vm/vm.h"

namespace ipds {

namespace serve {
class Server;
} // namespace serve

/**
 * Execution plan: run the VM over the configured sessions. All knobs
 * are optional; a default ExecPlan is the plain benign run (and what
 * a Builder with no plan() call gets).
 */
struct ExecPlan
{
    /** Arm a memory tamper (applied to every session). */
    ExecPlan &tamper(const TamperSpec &spec)
    {
        hasTamper = true;
        tamperSpec = spec;
        return *this;
    }

    /**
     * Arm an additional tamper via Vm::addTamper (applied to every
     * session): step-triggered (atStep > 0) or input-event-triggered
     * (afterInputEvent > 0). Unlike tamper() these stack, so a
     * multi-write attack recipe (src/gen) rides one ExecPlan; fired
     * records land in result().faultTampers.
     */
    ExecPlan &addTamper(const TamperSpec &spec)
    {
        extraTampers.push_back(spec);
        return *this;
    }

    /**
     * Arm a fault-injection plan (src/inject/fault.h). A disabled
     * plan (seed 0) is a no-op. When timing() is configured the
     * plan's config-level classes (spill pressure) are applied to the
     * TimingConfig at build(); per-run faults are salted with the
     * session index, so results are a pure function of
     * (program, inputs, plan, sessions, shards).
     */
    ExecPlan &faults(const FaultPlan &p)
    {
        hasFault = p.enabled();
        fault = p;
        return *this;
    }

    /**
     * Record the VM branch trace in result() (defaults to on for
     * single-session runs, off for multi-session runs).
     */
    ExecPlan &recordTrace(bool on)
    {
        recordTraceOn = on;
        recordTraceSet = true;
        return *this;
    }

    /**
     * Attach an extra ExecObserver to every Vm (not owned). Only
     * valid for single-shard runs: a shared observer across shard
     * threads would race.
     */
    ExecPlan &observe(ExecObserver *obs)
    {
        observers.push_back(obs);
        return *this;
    }

    bool hasTamper = false;
    TamperSpec tamperSpec;
    std::vector<TamperSpec> extraTampers;
    bool hasFault = false;
    FaultPlan fault;
    bool recordTraceSet = false;
    bool recordTraceOn = true;
    std::vector<ExecObserver *> observers;
};

/**
 * Capture plan: execute (per the nested ExecPlan) AND record the
 * committed event stream into an IPDS trace file at @p path
 * (src/replay format). The recorder attaches after the detector and
 * timing model, so it observes without perturbing any result: the
 * run's alarms, stats and metrics are unchanged, and a later
 * ReplayPlan over the file reproduces them bit-identically. Timing
 * runs capture the full instruction stream; detector-only runs
 * capture the compact branch stream.
 */
struct CapturePlan
{
    explicit CapturePlan(std::string path_) : path(std::move(path_)) {}

    /** Execution knobs for the recorded run (default: benign). */
    CapturePlan &exec(ExecPlan e)
    {
        execPlan = std::move(e);
        return *this;
    }

    /**
     * Detector-state snapshot cadence: embed a resumable snapshot
     * record (replay/snapshot.h) roughly every @p n data chunks of
     * each session, at the next function-event boundary. Snapshots
     * are what make `--seek-chunk` O(1); they do not perturb replayed
     * results. 0 disables (default 4).
     */
    CapturePlan &snapshotEvery(uint32_t n)
    {
        snapEvery = n;
        return *this;
    }

    std::string path;
    ExecPlan execPlan;
    uint32_t snapEvery = 4;
};

/**
 * Replay plan: re-detect a trace recorded by a CapturePlan instead of
 * executing the VM. The trace header supplies sessions, shards and
 * the TimingConfig (so sessions()/shards()/timing() are ignored);
 * threads() still selects replay parallelism, with the usual
 * shard-order deterministic join. Alarms, DetectorStats, TimingStats,
 * FaultStats and the shared metrics come out bit-identical to the
 * capture run; result() stays empty (there is no VM output to
 * reproduce). There is deliberately nothing else to configure here —
 * faults and tampers are captured, not re-injected. Corrupt,
 * truncated, version-skewed or foreign-module traces raise
 * FatalError.
 */
struct ReplayPlan
{
    explicit ReplayPlan(std::string path_) : path(std::move(path_)) {}

    /**
     * Parallel mode: load the trace through its v2 chunk-index footer
     * and replay per-session (detector-only) or per-capture-shard
     * (timing) work units on @p workers ThreadPool workers
     * (0 = one per hardware core). Results merge in session order and
     * are bit-identical to the sequential replay at any worker count.
     * v1 traces (no footer) degrade to the sequential path with
     * ipds.replay.index_missing = 1. Mutually exclusive with the seek
     * entry points below.
     */
    ReplayPlan &parallel(unsigned workers = 0)
    {
        parallelSet = true;
        parallelWorkers = workers;
        return *this;
    }

    /** Start replay at session @p s, skipping every earlier chunk
     *  (the index makes the skip O(1) in decoded bytes). */
    ReplayPlan &seekSession(uint32_t s)
    {
        hasSeekSession = true;
        seekSessionIdx = s;
        return *this;
    }

    /**
     * Start replay mid-session at chunk @p k of the file, resuming
     * the detector from the nearest preceding snapshot record of the
     * same session (or that session's start when none precedes it).
     * Alarms before the resume point are not re-raised; session-end
     * stats are exact (the snapshot carries the running counters).
     * Rejected for timing traces at build().
     */
    ReplayPlan &seekChunk(uint64_t k)
    {
        hasSeekChunk = true;
        seekChunkIdx = k;
        return *this;
    }

    std::string path;
    bool parallelSet = false;
    unsigned parallelWorkers = 0;
    bool hasSeekSession = false;
    uint32_t seekSessionIdx = 0;
    bool hasSeekChunk = false;
    uint64_t seekChunkIdx = 0;
};

/**
 * Serve plan: run the multi-tenant detection service. The session
 * binds a stream socket at @p socketPath, accepts framed trace
 * streams from concurrent clients (ipds_client / serve::Client), and
 * runs detection at ingest — bit-identical to a ReplayPlan over the
 * same bytes. run() blocks until stopAfterStreams() streams finished
 * (or stopServing() is called from another thread), then aggregates
 * every tenant's results in tenant-name order. threads() sizes the
 * ingest worker pool. For an open-ended daemon with its own signal
 * handling, use serve::Server (src/serve/server.h) directly — this
 * plan wraps it.
 */
struct ServePlan
{
    /** @p socketPath "" = no unix listener (configure tcp()). */
    explicit ServePlan(std::string socketPath_ = "")
        : socketPath(std::move(socketPath_))
    {}

    /**
     * Also listen on TCP at @p host (IPv4 dotted quad; "0.0.0.0"
     * for all interfaces), port @p port (0 = ephemeral). Both
     * listeners share one poll loop and actor pool.
     */
    ServePlan &tcp(std::string host, uint16_t port)
    {
        tcpHost = std::move(host);
        tcpPort = port;
        return *this;
    }

    /**
     * Register an additional module in the server's registry, keyed
     * by FNV-1a content hash: Hello v2 streams route to the module
     * matching their hash. The Builder's program() is always
     * registered (and serves v1 Hello streams). @p prog must outlive
     * run().
     */
    ServePlan &alsoServe(const CompiledProgram &prog)
    {
        extraModules.push_back(&prog);
        return *this;
    }

    /** Reject frames larger than @p n bytes (0 = wire default). */
    ServePlan &maxFrameBytes(size_t n)
    {
        maxFrame = n;
        return *this;
    }

    /**
     * Admission control: per-stream decoded chunks allowed in flight
     * before the server stops reading that client's socket
     * (0 = default). Backpressure is counted, never a deadlock.
     */
    ServePlan &pendingChunkCap(size_t n)
    {
        pendingCap = n;
        return *this;
    }

    /** Stop serving after @p n streams (0 = until stopServing()). */
    ServePlan &stopAfterStreams(uint64_t n)
    {
        stopAfter = n;
        return *this;
    }

    std::string socketPath;
    std::string tcpHost;
    uint16_t tcpPort = 0;
    std::vector<const CompiledProgram *> extraModules;
    size_t maxFrame = 0;
    size_t pendingCap = 0;
    uint64_t stopAfter = 0;
};

class Session
{
  public:
    class Builder;

    /** Start assembling a run. */
    static Builder builder();

    /**
     * Execute the configured run: all sessions, all shards. Reusable;
     * a second call reruns from scratch and replaces every result.
     * Returns *this so accessors chain off the call.
     */
    Session &run();

    // ---- results (valid after run()) --------------------------------

    bool alarmed() const { return !alarmList.empty(); }
    /** All alarms, session order (shard-merge is deterministic). */
    const std::vector<Alarm> &alarms() const { return alarmList; }

    /** Detector aggregates over every session. */
    const DetectorStats &detectorStats() const { return detStat; }

    /** Timing aggregates (zero unless timing() was configured). */
    const TimingStats &timingStats() const { return timStat; }

    /** Injection aggregates (zero unless faultPlan() was enabled). */
    const FaultStats &faultStats() const { return fltStat; }

    /** VM result of session 0 (output, exit code, branch trace). */
    const RunResult &result() const { return firstResult; }

    /** The run's metrics, under the obs/names.h naming scheme. */
    const obs::MetricsRegistry &metrics() const { return registry; }
    obs::MetricsRegistry &metrics() { return registry; }

    /** JSON metrics export — what benches should publish instead of
     *  reaching into Detector::stats(). */
    std::string metricsJson() const { return registry.toJson(); }
    /** Plain-text metrics summary. */
    std::string metricsText() const { return registry.toText(); }

    /** Retained trace events, shard order then record order. */
    const std::vector<obs::TraceEvent> &traceEvents() const
    {
        return traceLog;
    }
    /** chrome://tracing export of traceEvents(). */
    std::string traceChromeJson() const
    {
        return obs::toChromeJson(traceLog);
    }
    /** Events lost to ring wraparound across all shards. */
    uint64_t traceDropped() const { return traceLost; }

    // ---- ServePlan runs ---------------------------------------------

    /**
     * Ask a blocking ServePlan run() (in another thread) to stop
     * accepting and return. Thread-safe; a no-op when not serving.
     */
    void stopServing();

    /** Final /statsz snapshot of a ServePlan run ("" otherwise). */
    const std::string &serveStatsz() const { return serveStatszText; }

  private:
    friend class Builder;

    struct Options
    {
        const CompiledProgram *prog = nullptr;
        std::vector<std::string> inputs;
        uint32_t sessions = 1;
        uint32_t shards = 1;
        unsigned threads = 1;
        bool useTiming = false;
        TimingConfig timingCfg;
        bool detectorOn = true;
        bool detectorExplicit = false;
        uint64_t fuel = 50'000'000;
        bool hasTamper = false;
        TamperSpec tamperSpec;
        std::vector<TamperSpec> extraTampers;
        bool hasFault = false;
        FaultPlan fault;
        bool recordTrace = true;
        bool recordTraceExplicit = false;
        std::vector<ExecObserver *> extraObservers;
        uint32_t traceCategories = 0; ///< 0: tracing off
        uint32_t traceCapacity = 4096;
        std::string capturePath; ///< record a trace (CapturePlan)
        uint32_t captureSnapshotEvery = 4;
        std::string replayPath;  ///< replay a trace (ReplayPlan)
        bool replayParallel = false;
        unsigned replayWorkers = 0;
        bool replaySeekSessionSet = false;
        uint32_t replaySeekSession = 0;
        bool replaySeekChunkSet = false;
        uint64_t replaySeekChunk = 0;
        bool isServe = false;    ///< a ServePlan was configured
        std::string servePath;   ///< serve a socket (ServePlan)
        std::string serveTcpHost;
        uint16_t serveTcpPort = 0;
        std::vector<const CompiledProgram *> serveExtras;
        size_t serveMaxFrame = 0;
        size_t servePendingCap = 0;
        uint64_t serveStopAfter = 0;
        int planCount = 0; ///< plan() calls seen by the Builder
    };

    explicit Session(Options o);

    struct ShardOut;
    struct ServeHandle;
    void runShard(uint32_t shard, ShardOut &out,
                  replay::TraceWriter *capture) const;
    Session &runReplay();
    Session &runServe();

    Options opt;
    std::shared_ptr<ServeHandle> serveHandle;
    std::string serveStatszText;

    // Results.
    std::vector<Alarm> alarmList;
    DetectorStats detStat;
    TimingStats timStat;
    FaultStats fltStat;
    RunResult firstResult;
    obs::MetricsRegistry registry;
    std::vector<obs::TraceEvent> traceLog;
    uint64_t traceLost = 0;
};

/**
 * Fluent builder. Every setter returns *this; build() validates and
 * produces the Session. The CompiledProgram is borrowed and must
 * outlive the Session.
 */
class Session::Builder
{
  public:
    /** The compiled program to run (required). */
    Builder &program(const CompiledProgram &p)
    {
        o.prog = &p;
        return *this;
    }

    /** Scripted session input lines. */
    Builder &inputs(std::vector<std::string> lines)
    {
        o.inputs = std::move(lines);
        return *this;
    }

    /** Benign sessions to run (default 1). */
    Builder &sessions(uint32_t n)
    {
        o.sessions = n ? n : 1;
        return *this;
    }

    /**
     * Fixed shard count (default 1, max 256). Aggregates are a pure
     * function of (sessions, shards), never of threads.
     */
    Builder &shards(uint32_t k)
    {
        o.shards = k ? k : 1;
        return *this;
    }

    /** Worker threads (default 1; 0 = one per hardware core). */
    Builder &threads(unsigned t)
    {
        o.threads = t;
        return *this;
    }

    /**
     * Attach the Table 1 timing model. Unless detector() overrides
     * it, cfg.ipdsEnabled also decides whether the detector runs —
     * a disabled-IPDS timing run is the paper's baseline.
     */
    Builder &timing(const TimingConfig &cfg)
    {
        o.useTiming = true;
        o.timingCfg = cfg;
        return *this;
    }

    /** Force the detector on or off. */
    Builder &detector(bool on)
    {
        o.detectorOn = on;
        o.detectorExplicit = true;
        return *this;
    }

    /** Instruction budget per session (default 50M). */
    Builder &fuel(uint64_t f)
    {
        o.fuel = f;
        return *this;
    }

    /**
     * Enable structured tracing for the given category mask
     * (obs::TraceCat bits, intersected with the compiled-in mask) and
     * per-shard ring capacity.
     */
    Builder &trace(uint32_t categories, uint32_t capacity = 4096)
    {
        o.traceCategories = categories;
        o.traceCapacity = capacity;
        return *this;
    }

    // ---- the run's plan (configure exactly one) ---------------------

    /** Execute the VM with the given knobs (the default plan). */
    Builder &plan(ExecPlan p)
    {
        o.planCount++;
        applyExec(std::move(p));
        return *this;
    }

    /** Execute AND record an IPDS trace file (see CapturePlan). */
    Builder &plan(CapturePlan p)
    {
        o.planCount++;
        o.capturePath = std::move(p.path);
        o.captureSnapshotEvery = p.snapEvery;
        applyExec(std::move(p.execPlan));
        return *this;
    }

    /** Re-detect a recorded trace, no VM (see ReplayPlan). */
    Builder &plan(ReplayPlan p)
    {
        o.planCount++;
        o.replayPath = std::move(p.path);
        o.replayParallel = p.parallelSet;
        o.replayWorkers = p.parallelWorkers;
        o.replaySeekSessionSet = p.hasSeekSession;
        o.replaySeekSession = p.seekSessionIdx;
        o.replaySeekChunkSet = p.hasSeekChunk;
        o.replaySeekChunk = p.seekChunkIdx;
        return *this;
    }

    /** Run the multi-tenant detection service (see ServePlan). */
    Builder &plan(ServePlan p)
    {
        o.planCount++;
        o.isServe = true;
        o.servePath = std::move(p.socketPath);
        o.serveTcpHost = std::move(p.tcpHost);
        o.serveTcpPort = p.tcpPort;
        o.serveExtras = std::move(p.extraModules);
        o.serveMaxFrame = p.maxFrame;
        o.servePendingCap = p.pendingCap;
        o.serveStopAfter = p.stopAfter;
        return *this;
    }

    // ---- deprecated pre-plan mode setters ---------------------------
    //
    // Shims for source compatibility: each forwards into the same
    // Options fields its plan-based replacement writes, and build()
    // still rejects the historically-invalid combinations with the
    // original diagnostics. New code composes a typed plan instead —
    // the plan types make those combinations unrepresentable.

    /** @deprecated Use plan(ExecPlan().tamper(spec)). */
    [[deprecated("use plan(ExecPlan().tamper(spec))")]]
    Builder &tamper(const TamperSpec &spec)
    {
        o.hasTamper = true;
        o.tamperSpec = spec;
        return *this;
    }

    /** @deprecated Use plan(ExecPlan().faults(p)). */
    [[deprecated("use plan(ExecPlan().faults(p))")]]
    Builder &faultPlan(const FaultPlan &p)
    {
        o.hasFault = p.enabled();
        o.fault = p;
        return *this;
    }

    /** @deprecated Use plan(ExecPlan().recordTrace(on)). */
    [[deprecated("use plan(ExecPlan().recordTrace(on))")]]
    Builder &recordTrace(bool on)
    {
        o.recordTrace = on;
        o.recordTraceExplicit = true;
        return *this;
    }

    /** @deprecated Use plan(ExecPlan().observe(obs)). */
    [[deprecated("use plan(ExecPlan().observe(obs))")]]
    Builder &observe(ExecObserver *obs)
    {
        o.extraObservers.push_back(obs);
        return *this;
    }

    /** @deprecated Use plan(CapturePlan(path)). */
    [[deprecated("use plan(CapturePlan(path))")]]
    Builder &captureTo(const std::string &path)
    {
        o.capturePath = path;
        return *this;
    }

    /** @deprecated Use plan(ReplayPlan(path)). */
    [[deprecated("use plan(ReplayPlan(path))")]]
    Builder &replayFrom(const std::string &path)
    {
        o.replayPath = path;
        return *this;
    }

    /** Validate and assemble. Throws FatalError on a bad recipe. */
    Session build();

  private:
    void applyExec(ExecPlan p)
    {
        o.hasTamper = p.hasTamper;
        o.tamperSpec = p.tamperSpec;
        o.extraTampers = std::move(p.extraTampers);
        o.hasFault = p.hasFault;
        o.fault = p.fault;
        if (p.recordTraceSet) {
            o.recordTrace = p.recordTraceOn;
            o.recordTraceExplicit = true;
        }
        o.extraObservers = std::move(p.observers);
    }

    Session::Options o;
};

} // namespace ipds

#endif // IPDS_OBS_SESSION_H
