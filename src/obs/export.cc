#include "obs/export.h"

#include "obs/names.h"

namespace ipds {
namespace obs {

void
exportDetectorStats(const DetectorStats &s, uint64_t alarms,
                    MetricsRegistry &reg)
{
    namespace n = names;
    reg.add(reg.counter(n::kDetBranchesSeen), s.branchesSeen);
    reg.add(reg.counter(n::kDetChecksEnqueued), s.checksEnqueued);
    reg.add(reg.counter(n::kDetUpdatesApplied), s.updatesApplied);
    reg.add(reg.counter(n::kDetActionsApplied), s.actionsApplied);
    reg.add(reg.counter(n::kDetFramesPushed), s.framesPushed);
    reg.setMax(reg.gauge(n::kDetMaxStackDepth), s.maxStackDepth);
    reg.add(reg.counter(n::kDetAlarms), alarms);
}

void
exportTimingStats(const TimingStats &s, MetricsRegistry &reg)
{
    namespace n = names;
    reg.add(reg.counter(n::kCpuInstructions), s.instructions);
    reg.add(reg.counter(n::kCpuCycles), s.cycles);
    reg.add(reg.counter(n::kCpuBranches), s.branches);
    reg.add(reg.counter(n::kCpuMispredicts), s.mispredicts);
    reg.add(reg.counter(n::kCpuL1iMisses), s.l1iMisses);
    reg.add(reg.counter(n::kCpuL1dMisses), s.l1dMisses);
    reg.add(reg.counter(n::kCpuL2Misses), s.l2Misses);
    reg.add(reg.counter(n::kCpuTlbMisses), s.tlbMisses);
    reg.add(reg.counter(n::kCpuIpdsStallCycles), s.ipdsStallCycles);
    reg.setMax(reg.gauge(n::kRingMaxOccupancy), s.ringMaxOccupancy);
    reg.add(reg.counter(n::kRingDrains), s.ringDrains);
    reg.add(reg.counter(n::kEngRequests), s.engine.requests);
    reg.add(reg.counter(n::kEngCheckRequests),
            s.engine.checkRequests);
    reg.add(reg.counter(n::kEngUpdateRequests),
            s.engine.updateRequests);
    reg.add(reg.counter(n::kEngBusyCycles), s.engine.busyCycles);
    reg.add(reg.counter(n::kEngQueueFullStalls),
            s.engine.queueFullStalls);
    reg.add(reg.counter(n::kEngStallCycles), s.engine.stallCycles);
    reg.add(reg.counter(n::kEngSpillEvents), s.engine.spillEvents);
    reg.add(reg.counter(n::kEngSpillBits), s.engine.spillBits);
    reg.add(reg.counter(n::kEngFillEvents), s.engine.fillEvents);
    reg.add(reg.counter(n::kEngFillBits), s.engine.fillBits);
    reg.add(reg.counter(n::kEngCheckLatencySum),
            s.engine.checkLatencySum);
    reg.add(reg.counter(n::kEngCheckLatencyCount),
            s.engine.checkLatencyCount);
    reg.setMax(reg.gauge(n::kEngFramesDepth), s.engine.framesDepth);
    reg.add(reg.counter(n::kEngDepthClamps), s.engine.depthClamps);
    reg.add(reg.counter(n::kEngAccountingClamps),
            s.engine.accountingClamps);
    reg.add(reg.counter(n::kRingOverflowFlushes),
            s.ringOverflowFlushes);
    reg.add(reg.counter(n::kRingFaultDrops), s.ringFaultDrops);
    reg.add(reg.counter(n::kRingFaultDups), s.ringFaultDups);
}

void
exportFaultStats(const FaultStats &s, MetricsRegistry &reg)
{
    namespace n = names;
    reg.add(reg.counter(n::kFaultMemTampers), s.memTampers);
    reg.add(reg.counter(n::kFaultBsvFlips), s.bsvFlips);
    reg.add(reg.counter(n::kFaultCtxSwitches), s.ctxSwitches);
    reg.add(reg.counter(n::kFaultRingDrops), s.ringDrops);
    reg.add(reg.counter(n::kFaultRingDups), s.ringDups);
}

} // namespace obs
} // namespace ipds
