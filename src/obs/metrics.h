#ifndef IPDS_OBS_METRICS_H
#define IPDS_OBS_METRICS_H

/**
 * @file
 * Handle-based metrics registry for the observability subsystem.
 *
 * Design constraints (DESIGN.md "Observability and the Session
 * facade"):
 *
 *  - hot-path cost of a counter increment is ONE array store: names
 *    are resolved to flat slot indices at registration time, so no
 *    hashing, no map lookup, no lock is ever on the event path;
 *  - a registry is single-threaded by construction; sharded runs give
 *    each shard its own registry and merge them in shard order at the
 *    join point, so aggregates are deterministic for any worker count;
 *  - export is deterministic too: metrics serialize in registration
 *    order, which the naming scheme (obs/names.h) keeps stable.
 *
 * Three metric kinds:
 *  - Counter: monotonically accumulated sum (merge: add);
 *  - Gauge: last/extreme observed value (merge: max — the gauges we
 *    track, stack depth and queue high-water, are maxima);
 *  - Histogram: power-of-two bucketed distribution with count and sum
 *    (merge: bucket-wise add).
 */

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace ipds {
namespace obs {

/** Index into the registry's flat slot array. */
using MetricHandle = uint32_t;
constexpr MetricHandle kNoMetric = 0xffffffff;

class MetricsRegistry
{
  public:
    /** Buckets: values bucketed by bit width, 0, 1, 2-3, 4-7, ... */
    static constexpr uint32_t kHistBuckets = 33;

    /**
     * Register (or re-resolve) a metric. Registering an existing name
     * returns the existing handle; a kind conflict panics. Handles
     * stay valid for the registry's lifetime.
     */
    MetricHandle counter(const std::string &name);
    MetricHandle gauge(const std::string &name);
    MetricHandle histogram(const std::string &name);

    /** Counter add — the hot path: one array add. */
    void add(MetricHandle h, uint64_t v = 1) { slot[h] += v; }

    /** Gauge set / monotonic max. */
    void set(MetricHandle h, uint64_t v) { slot[h] = v; }
    void setMax(MetricHandle h, uint64_t v)
    {
        if (v > slot[h])
            slot[h] = v;
    }

    /** Histogram observation: bucket bump + count + sum (3 adds). */
    void observe(MetricHandle h, uint64_t v)
    {
        uint32_t b = static_cast<uint32_t>(std::bit_width(v));
        if (b >= kHistBuckets)
            b = kHistBuckets - 1; // clamp: last bucket is >= 2^31
        slot[h]++;                // count
        slot[h + 1] += v;         // sum
        slot[h + 2 + b]++;        // bucket
    }

    /** Counter/gauge value, or histogram observation count. */
    uint64_t value(MetricHandle h) const { return slot[h]; }
    uint64_t histSum(MetricHandle h) const { return slot[h + 1]; }
    uint64_t histBucket(MetricHandle h, uint32_t b) const
    {
        return slot[h + 2 + b];
    }

    /** Look a metric up by name; kNoMetric if absent. */
    MetricHandle find(const std::string &name) const;

    size_t metricCount() const { return descs.size(); }

    /**
     * Fold another registry in. Metrics are matched BY NAME (both
     * registries normally register in the same order, but merge does
     * not require it); a kind mismatch panics, and metrics absent here
     * are registered on the fly. Counters and histograms add, gauges
     * take the max. Deterministic given a deterministic merge order.
     */
    void merge(const MetricsRegistry &o);

    /** Zero every slot; registrations are kept. */
    void reset();

    /**
     * JSON export: one object with "counters", "gauges" and
     * "histograms" sub-objects, metrics in registration order.
     * Histograms serialize count/sum/avg plus the non-empty prefix of
     * their bucket array.
     */
    std::string toJson(int indent = 2) const;

    /** Plain-text summary, one "name value" line per metric. */
    std::string toText() const;

  private:
    enum class Kind : uint8_t { Counter, Gauge, Histogram };

    struct Desc
    {
        std::string name;
        Kind kind = Kind::Counter;
        uint32_t base = 0; ///< first slot
    };

    MetricHandle reg(const std::string &name, Kind k, uint32_t width);
    const Desc *findDesc(const std::string &name) const;

    std::vector<Desc> descs;    ///< registration order
    std::vector<uint64_t> slot; ///< flat storage, hot path
};

} // namespace obs
} // namespace ipds

#endif // IPDS_OBS_METRICS_H
