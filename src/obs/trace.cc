#include "obs/trace.h"

#include <bit>

#include "support/diag.h"

namespace ipds {
namespace obs {

const char *
traceKindName(TraceKind k)
{
    switch (k) {
      case TraceKind::BranchCommit:
        return "branch_commit";
      case TraceKind::CheckEnqueue:
        return "check_enqueue";
      case TraceKind::RequestDequeue:
        return "request_dequeue";
      case TraceKind::FramePush:
        return "frame_push";
      case TraceKind::FramePop:
        return "frame_pop";
      case TraceKind::Spill:
        return "spill";
      case TraceKind::Fill:
        return "fill";
      case TraceKind::Alarm:
        return "alarm";
      case TraceKind::SessionBegin:
        return "session_begin";
      case TraceKind::SessionEnd:
        return "session_end";
      case TraceKind::InputEvent:
        return "input_event";
      case TraceKind::FaultInject:
        return "fault_inject";
    }
    return "?";
}

Tracer::Tracer(uint32_t categories, uint32_t capacity)
    : enabledMask(categories & kCompiledCategories)
{
    if (capacity < 2)
        capacity = 2;
    ring.resize(std::bit_ceil(capacity));
    capMask = ring.size() - 1;
}

void
Tracer::recordSlow(TraceCat c, TraceKind k, uint32_t func,
                   uint64_t pc, uint64_t a, uint32_t b)
{
    TraceEvent &ev = ring[static_cast<size_t>(nextSeq) & capMask];
    ev.seq = nextSeq++;
    ev.pc = pc;
    ev.a = a;
    ev.b = b;
    ev.func = func;
    ev.cat = static_cast<uint16_t>(c);
    ev.kind = k;
    ev.shard = shard;
}

size_t
Tracer::size() const
{
    return nextSeq < ring.size() ? static_cast<size_t>(nextSeq)
                                 : ring.size();
}

uint64_t
Tracer::dropped() const
{
    return nextSeq < ring.size() ? 0 : nextSeq - ring.size();
}

const TraceEvent &
Tracer::at(size_t i) const
{
    if (i >= size())
        panic("Tracer::at: index %zu out of range (%zu events)", i,
              size());
    return ring[static_cast<size_t>(dropped() + i) & capMask];
}

size_t
Tracer::countCat(TraceCat c) const
{
    size_t n = 0;
    size_t sz = size();
    for (size_t i = 0; i < sz; i++)
        n += (at(i).cat & c) ? 1 : 0;
    return n;
}

std::vector<TraceEvent>
Tracer::events() const
{
    std::vector<TraceEvent> out;
    size_t sz = size();
    out.reserve(sz);
    for (size_t i = 0; i < sz; i++)
        out.push_back(at(i));
    return out;
}

void
Tracer::clear()
{
    nextSeq = 0;
}

std::string
Tracer::toChromeJson() const
{
    return obs::toChromeJson(events());
}

std::string
Tracer::toText() const
{
    return obs::toText(events());
}

std::string
toChromeJson(const std::vector<TraceEvent> &events)
{
    // The "JSON array" flavour of the chrome://tracing format: every
    // record becomes an instant event; pid 0, tid = shard, ts = seq
    // (microsecond units are nominal — ordering is what matters).
    std::string out = "[\n";
    for (size_t i = 0; i < events.size(); i++) {
        const TraceEvent &ev = events[i];
        out += strprintf(
            "  {\"name\": \"%s\", \"ph\": \"i\", \"s\": \"t\", "
            "\"pid\": 0, \"tid\": %u, \"ts\": %llu, "
            "\"args\": {\"cat\": %u, \"func\": %u, "
            "\"pc\": %llu, \"a\": %llu, \"b\": %u}}%s\n",
            traceKindName(ev.kind), ev.shard,
            static_cast<unsigned long long>(ev.seq), ev.cat, ev.func,
            static_cast<unsigned long long>(ev.pc),
            static_cast<unsigned long long>(ev.a), ev.b,
            i + 1 < events.size() ? "," : "");
    }
    out += "]\n";
    return out;
}

std::string
toText(const std::vector<TraceEvent> &events)
{
    std::string out;
    for (const TraceEvent &ev : events)
        out += strprintf(
            "[%u:%8llu] %-15s func=%u pc=0x%llx a=%llu b=%u\n",
            ev.shard, static_cast<unsigned long long>(ev.seq),
            traceKindName(ev.kind), ev.func,
            static_cast<unsigned long long>(ev.pc),
            static_cast<unsigned long long>(ev.a), ev.b);
    return out;
}

} // namespace obs
} // namespace ipds
