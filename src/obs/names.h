#ifndef IPDS_OBS_NAMES_H
#define IPDS_OBS_NAMES_H

/**
 * @file
 * The one metric naming scheme, shared by every producer.
 *
 * Names are dotted paths, `ipds.<component>.<snake_case_field>`, and
 * mirror the stats structs field-for-field (DetectorStats,
 * TimingStats, EngineStats, CampaignResult), so a value seen in a
 * metrics export can be traced straight back to its producer. Benches
 * and embedders read these through Session::metricsJson() /
 * Session::metrics() instead of reaching into Detector::stats() and
 * friends.
 *
 * Kinds: counters unless noted; `.max_` prefixed fields are gauges
 * merged by maximum; `_hist` suffixed names are histograms.
 */

namespace ipds {
namespace obs {
namespace names {

// DetectorStats (ipds/detector.h)
inline constexpr const char *kDetBranchesSeen =
    "ipds.detector.branches_seen";
inline constexpr const char *kDetChecksEnqueued =
    "ipds.detector.checks_enqueued";
inline constexpr const char *kDetUpdatesApplied =
    "ipds.detector.updates_applied";
inline constexpr const char *kDetActionsApplied =
    "ipds.detector.actions_applied";
inline constexpr const char *kDetFramesPushed =
    "ipds.detector.frames_pushed";
inline constexpr const char *kDetMaxStackDepth = ///< gauge
    "ipds.detector.max_stack_depth";
inline constexpr const char *kDetAlarms = "ipds.detector.alarms";

// Request transport (ipds/request_ring.h)
inline constexpr const char *kRingMaxOccupancy = ///< gauge
    "ipds.ring.max_occupancy";
inline constexpr const char *kRingDrains = "ipds.ring.drains";
inline constexpr const char *kRingOverflowFlushes =
    "ipds.ring.overflow_flushes";
inline constexpr const char *kRingFaultDrops =
    "ipds.ring.fault_drops";
inline constexpr const char *kRingFaultDups =
    "ipds.ring.fault_dups";

// CpuModel / TimingStats (timing/cpu.h)
inline constexpr const char *kCpuInstructions =
    "ipds.cpu.instructions";
inline constexpr const char *kCpuCycles = "ipds.cpu.cycles";
inline constexpr const char *kCpuBranches = "ipds.cpu.branches";
inline constexpr const char *kCpuMispredicts =
    "ipds.cpu.mispredicts";
inline constexpr const char *kCpuL1iMisses = "ipds.cpu.l1i_misses";
inline constexpr const char *kCpuL1dMisses = "ipds.cpu.l1d_misses";
inline constexpr const char *kCpuL2Misses = "ipds.cpu.l2_misses";
inline constexpr const char *kCpuTlbMisses = "ipds.cpu.tlb_misses";
inline constexpr const char *kCpuIpdsStallCycles =
    "ipds.cpu.ipds_stall_cycles";

// IpdsEngine / EngineStats (timing/engine.h)
inline constexpr const char *kEngRequests = "ipds.engine.requests";
inline constexpr const char *kEngCheckRequests =
    "ipds.engine.check_requests";
inline constexpr const char *kEngUpdateRequests =
    "ipds.engine.update_requests";
inline constexpr const char *kEngBusyCycles =
    "ipds.engine.busy_cycles";
inline constexpr const char *kEngQueueFullStalls =
    "ipds.engine.queue_full_stalls";
inline constexpr const char *kEngStallCycles =
    "ipds.engine.stall_cycles";
inline constexpr const char *kEngSpillEvents =
    "ipds.engine.spill_events";
inline constexpr const char *kEngSpillBits = "ipds.engine.spill_bits";
inline constexpr const char *kEngFillEvents =
    "ipds.engine.fill_events";
inline constexpr const char *kEngFillBits = "ipds.engine.fill_bits";
inline constexpr const char *kEngCheckLatencySum =
    "ipds.engine.check_latency_sum";
inline constexpr const char *kEngCheckLatencyCount =
    "ipds.engine.check_latency_count";
inline constexpr const char *kEngFramesDepth = ///< gauge
    "ipds.engine.frames_depth";
inline constexpr const char *kEngDepthClamps =
    "ipds.engine.depth_clamps";
inline constexpr const char *kEngAccountingClamps =
    "ipds.engine.accounting_clamps";

// Vm throughput (vm/vm.h VmStats)
inline constexpr const char *kVmInstructions =
    "ipds.vm.instructions";
inline constexpr const char *kVmBlocks = "ipds.vm.blocks";
inline constexpr const char *kVmEventBatchFlushes =
    "ipds.vm.event_batch_flushes";

// Session facade (obs/session.h)
inline constexpr const char *kSessRuns = "ipds.session.runs";
inline constexpr const char *kSessSteps = "ipds.session.steps";
inline constexpr const char *kSessInputEvents =
    "ipds.session.input_events";
inline constexpr const char *kSessTraceDropped =
    "ipds.session.trace_dropped";

// Fault injection (src/inject/fault.h FaultStats)
inline constexpr const char *kFaultMemTampers =
    "ipds.fault.mem_tampers";
inline constexpr const char *kFaultBsvFlips =
    "ipds.fault.bsv_flips";
inline constexpr const char *kFaultCtxSwitches =
    "ipds.fault.ctx_switches";
inline constexpr const char *kFaultRingDrops =
    "ipds.fault.ring_drops";
inline constexpr const char *kFaultRingDups =
    "ipds.fault.ring_dups";

// Trace capture & replay (src/replay)
inline constexpr const char *kReplayChunks = "ipds.replay.chunks";
inline constexpr const char *kReplayBytes = "ipds.replay.bytes";
inline constexpr const char *kReplayEvents = "ipds.replay.events";
inline constexpr const char *kReplaySessions =
    "ipds.replay.sessions";
inline constexpr const char *kReplayEventsPerSec = ///< gauge
    "ipds.replay.events_per_sec";
inline constexpr const char *kReplayCrcFailures =
    "ipds.replay.crc_failures";
inline constexpr const char *kReplayTruncatedChunks =
    "ipds.replay.truncated_chunks";
inline constexpr const char *kReplayVersionMismatches =
    "ipds.replay.version_mismatches";
inline constexpr const char *kReplayIndexMissing =
    "ipds.replay.index_missing";
inline constexpr const char *kReplaySeeks = "ipds.replay.seeks";
inline constexpr const char *kReplaySnapshotsWritten =
    "ipds.replay.snapshots_written";
inline constexpr const char *kReplaySnapshotsUsed =
    "ipds.replay.snapshots_used";
inline constexpr const char *kReplayWorkers = ///< gauge (run config)
    "ipds.replay.workers";

// Detection service, per-tenant transport meters (src/serve).
// Each tenant's registry otherwise mirrors the offline-replay
// registration order exactly, so `/statsz` sections diff cleanly
// against `run_protected --replay --stats` output.
inline constexpr const char *kTenantStreams = "ipds.tenant.streams";
inline constexpr const char *kTenantFrames = "ipds.tenant.frames";
inline constexpr const char *kTenantBytes = "ipds.tenant.bytes";
inline constexpr const char *kTenantBackpressureStalls =
    "ipds.tenant.backpressure_stalls";
inline constexpr const char *kTenantAlarms = "ipds.tenant.alarms";

// Detection service, server-wide (src/serve/server.h)
inline constexpr const char *kServeStreamsAccepted =
    "ipds.serve.streams_accepted";
inline constexpr const char *kServeStreamsCompleted =
    "ipds.serve.streams_completed";
inline constexpr const char *kServeStreamsFailed =
    "ipds.serve.streams_failed";
inline constexpr const char *kServeFramesIn = "ipds.serve.frames_in";
inline constexpr const char *kServeBytesIn = "ipds.serve.bytes_in";
inline constexpr const char *kServeFrameCrcFailures =
    "ipds.serve.frame_crc_failures";
inline constexpr const char *kServeOversizedFrames =
    "ipds.serve.oversized_frames";
inline constexpr const char *kServeBadFrames =
    "ipds.serve.bad_frames";
inline constexpr const char *kServeBackpressureStalls =
    "ipds.serve.backpressure_stalls";
inline constexpr const char *kServeResumes = "ipds.serve.resumes";
inline constexpr const char *kServeReconnects =
    "ipds.serve.reconnects";
inline constexpr const char *kServeResumedChunks =
    "ipds.serve.resumed_chunks";
inline constexpr const char *kServeUnknownModule =
    "ipds.serve.unknown_module";
inline constexpr const char *kServeAcceptErrors =
    "ipds.serve.accept_errors";
inline constexpr const char *kServeDroppedReplyBytes =
    "ipds.serve.dropped_reply_bytes";
inline constexpr const char *kServeMaxActiveStreams = ///< gauge
    "ipds.serve.max_active_streams";
inline constexpr const char *kServeIngestLatencyHist = ///< histogram
    "ipds.serve.ingest_latency_us_hist";

// Attack campaigns (attack/campaign.h)
inline constexpr const char *kCampAttacks = "ipds.campaign.attacks";
inline constexpr const char *kCampFired = "ipds.campaign.fired";
inline constexpr const char *kCampCfChanged =
    "ipds.campaign.cf_changed";
inline constexpr const char *kCampDetected =
    "ipds.campaign.detected";
inline constexpr const char *kCampFalsePositives =
    "ipds.campaign.false_positives";
inline constexpr const char *kCampDetectionBranchHist = ///< histogram
    "ipds.campaign.detection_branch_index_hist";

} // namespace names
} // namespace obs
} // namespace ipds

#endif // IPDS_OBS_NAMES_H
