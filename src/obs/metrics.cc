#include "obs/metrics.h"

#include "support/diag.h"

namespace ipds {
namespace obs {

const MetricsRegistry::Desc *
MetricsRegistry::findDesc(const std::string &name) const
{
    // Registries hold a few dozen metrics and lookups happen only at
    // registration/merge/export time, so linear scan beats carrying a
    // map alongside the flat slots.
    for (const Desc &d : descs)
        if (d.name == name)
            return &d;
    return nullptr;
}

MetricHandle
MetricsRegistry::reg(const std::string &name, Kind k, uint32_t width)
{
    if (const Desc *d = findDesc(name)) {
        if (d->kind != k)
            panic("MetricsRegistry: %s re-registered with a different "
                  "kind", name.c_str());
        return d->base;
    }
    Desc d;
    d.name = name;
    d.kind = k;
    d.base = static_cast<uint32_t>(slot.size());
    descs.push_back(d);
    slot.insert(slot.end(), width, 0);
    return d.base;
}

MetricHandle
MetricsRegistry::counter(const std::string &name)
{
    return reg(name, Kind::Counter, 1);
}

MetricHandle
MetricsRegistry::gauge(const std::string &name)
{
    return reg(name, Kind::Gauge, 1);
}

MetricHandle
MetricsRegistry::histogram(const std::string &name)
{
    return reg(name, Kind::Histogram, 2 + kHistBuckets);
}

MetricHandle
MetricsRegistry::find(const std::string &name) const
{
    const Desc *d = findDesc(name);
    return d ? d->base : kNoMetric;
}

void
MetricsRegistry::merge(const MetricsRegistry &o)
{
    for (const Desc &od : o.descs) {
        MetricHandle h;
        switch (od.kind) {
          case Kind::Counter:
            h = counter(od.name);
            add(h, o.slot[od.base]);
            break;
          case Kind::Gauge:
            h = gauge(od.name);
            setMax(h, o.slot[od.base]);
            break;
          case Kind::Histogram:
            h = histogram(od.name);
            for (uint32_t i = 0; i < 2 + kHistBuckets; i++)
                slot[h + i] += o.slot[od.base + i];
            break;
        }
    }
}

void
MetricsRegistry::reset()
{
    std::fill(slot.begin(), slot.end(), 0);
}

namespace {

void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out += strprintf("\\u%04x", c);
        } else {
            out += c;
        }
    }
    out += '"';
}

} // namespace

std::string
MetricsRegistry::toJson(int indent) const
{
    const std::string pad(static_cast<size_t>(indent), ' ');
    const std::string pad2 = pad + pad;
    const std::string pad3 = pad2 + pad;
    std::string out = "{\n";

    auto emitKind = [&](Kind k, const char *label, bool last) {
        out += pad;
        appendJsonString(out, label);
        out += ": {";
        bool first = true;
        for (const Desc &d : descs) {
            if (d.kind != k)
                continue;
            out += first ? "\n" : ",\n";
            first = false;
            out += pad2;
            appendJsonString(out, d.name);
            out += ": ";
            if (k != Kind::Histogram) {
                out += strprintf(
                    "%llu",
                    static_cast<unsigned long long>(slot[d.base]));
                continue;
            }
            uint64_t count = slot[d.base];
            uint64_t sum = slot[d.base + 1];
            uint32_t top = 0;
            for (uint32_t b = 0; b < kHistBuckets; b++)
                if (slot[d.base + 2 + b])
                    top = b + 1;
            out += strprintf(
                "{\n%s\"count\": %llu,\n%s\"sum\": %llu,\n"
                "%s\"avg\": %.3f,\n%s\"buckets\": [",
                pad3.c_str(), static_cast<unsigned long long>(count),
                pad3.c_str(), static_cast<unsigned long long>(sum),
                pad3.c_str(), count ? double(sum) / double(count) : 0.0,
                pad3.c_str());
            for (uint32_t b = 0; b < top; b++)
                out += strprintf(
                    "%s%llu", b ? ", " : "",
                    static_cast<unsigned long long>(
                        slot[d.base + 2 + b]));
            out += "]\n" + pad2 + "}";
        }
        out += first ? "}" : "\n" + pad + "}";
        out += last ? "\n" : ",\n";
    };

    emitKind(Kind::Counter, "counters", false);
    emitKind(Kind::Gauge, "gauges", false);
    emitKind(Kind::Histogram, "histograms", true);
    out += "}";
    return out;
}

std::string
MetricsRegistry::toText() const
{
    std::string out;
    for (const Desc &d : descs) {
        if (d.kind == Kind::Histogram) {
            uint64_t count = slot[d.base];
            uint64_t sum = slot[d.base + 1];
            out += strprintf(
                "%-44s count %llu sum %llu avg %.3f\n", d.name.c_str(),
                static_cast<unsigned long long>(count),
                static_cast<unsigned long long>(sum),
                count ? double(sum) / double(count) : 0.0);
        } else {
            out += strprintf(
                "%-44s %llu\n", d.name.c_str(),
                static_cast<unsigned long long>(slot[d.base]));
        }
    }
    return out;
}

} // namespace obs
} // namespace ipds
