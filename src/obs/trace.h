#ifndef IPDS_OBS_TRACE_H
#define IPDS_OBS_TRACE_H

/**
 * @file
 * Ring-buffered structured event tracer.
 *
 * Event categories form a bitmask with two gates:
 *
 *  - compile time: the CMake option IPDS_TRACE_CATEGORIES (README)
 *    becomes the macro of the same name; a category compiled out can
 *    never record, whatever the runtime mask says;
 *  - run time: the tracer's constructor mask. record() folds both into
 *    one word, so a disabled category costs exactly one predictable
 *    branch on the hot path — and components that hold a `Tracer *`
 *    pay only a null check when tracing is off entirely.
 *
 * The buffer is a fixed-capacity ring: the newest events win, the
 * `dropped` counter says how many fell off the front. Sharded sessions
 * give each shard its own tracer (tagged via setShard) and concatenate
 * the per-shard snapshots in shard order at the join, keeping output
 * deterministic for any worker-thread count.
 *
 * Exporters: chrome://tracing JSON (load in about://tracing or
 * Perfetto) and a plain-text dump; both are free functions over event
 * vectors so merged streams export the same way as live tracers.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace ipds {
namespace obs {

/** Event categories (bitmask). */
enum TraceCat : uint32_t
{
    kCatBranch = 1u << 0,  ///< committed conditional branches
    kCatCheck = 1u << 1,   ///< direction checks enqueued
    kCatQueue = 1u << 2,   ///< request-queue enqueue/dequeue traffic
    kCatFrame = 1u << 3,   ///< BSV frame push/pop
    kCatSpill = 1u << 4,   ///< table-stack spill/fill traffic
    kCatAlarm = 1u << 5,   ///< infeasible-path alarms, with cause
    kCatSession = 1u << 6, ///< session begin/end, input events
    kCatFault = 1u << 7,   ///< injected faults (src/inject)
    kCatAll = 0xff,
};

/**
 * Categories baked in at build time (CMake option
 * IPDS_TRACE_CATEGORIES: "all", "none" or a numeric mask).
 */
#ifdef IPDS_TRACE_CATEGORIES
inline constexpr uint32_t kCompiledCategories = IPDS_TRACE_CATEGORIES;
#else
inline constexpr uint32_t kCompiledCategories = kCatAll;
#endif

/** What happened (the category tells which subsystem). */
enum class TraceKind : uint8_t
{
    BranchCommit,  ///< Branch: pc, a=taken, b=checked
    CheckEnqueue,  ///< Check: pc, a=actual direction
    RequestDequeue,///< Queue: pc, a=request kind, b=stall cycles
    FramePush,     ///< Frame: a=entry actions, b=table bits
    FramePop,      ///< Frame: b=table bits
    Spill,         ///< Spill: a=bits spilled
    Fill,          ///< Spill: a=bits filled
    Alarm,         ///< Alarm: pc, a=actual, b=expected BsvState
    SessionBegin,  ///< Session: a=session index
    SessionEnd,    ///< Session: a=session index, b=steps
    InputEvent,    ///< Session: pc of the consuming call, a=event #
    FaultInject,   ///< Fault: a=FaultInjector::Kind, b=payload
};

/** Human-readable name of @p k (exporters, tests). */
const char *traceKindName(TraceKind k);

/** One recorded event. Trivially copyable. */
struct TraceEvent
{
    uint64_t seq = 0; ///< per-tracer record index (drop-stable)
    uint64_t pc = 0;
    uint64_t a = 0;          ///< kind-specific payload
    uint32_t b = 0;          ///< kind-specific payload
    uint32_t func = 0xffffffff; ///< FuncId, if the event has one
    uint16_t cat = 0;
    TraceKind kind = TraceKind::BranchCommit;
    uint8_t shard = 0;
};

class Tracer
{
  public:
    /**
     * @p categories runtime category mask (intersected with the
     * compiled-in mask); @p capacity ring size, rounded up to a power
     * of two.
     */
    explicit Tracer(uint32_t categories = kCatAll,
                    uint32_t capacity = 4096);

    /** Effective mask (runtime AND compile time). */
    uint32_t mask() const { return enabledMask; }
    bool wants(TraceCat c) const { return (enabledMask & c) != 0; }

    /** Tag subsequently recorded events (sharded sessions). */
    void setShard(uint8_t s) { shard = s; }

    /**
     * Record one event. Disabled category: one predictable branch,
     * nothing else. The ring write is deliberately out of line so the
     * inline footprint at call sites (detector/VM hot paths) is just
     * the mask test and a never-taken call.
     */
    void
    record(TraceCat c, TraceKind k, uint32_t func = 0xffffffff,
           uint64_t pc = 0, uint64_t a = 0, uint32_t b = 0)
    {
        if (!(enabledMask & c))
            return;
        recordSlow(c, k, func, pc, a, b);
    }

    /** Events currently held (≤ capacity). */
    size_t size() const;
    size_t capacity() const { return ring.size(); }
    /** Events lost to ring wraparound. */
    uint64_t dropped() const;
    /** Total record() calls that passed the category gate. */
    uint64_t recorded() const { return nextSeq; }

    /** i-th retained event, oldest first (0 ≤ i < size()). */
    const TraceEvent &at(size_t i) const;

    /** Count retained events in category @p c. */
    size_t countCat(TraceCat c) const;

    /** Snapshot of retained events, oldest first. */
    std::vector<TraceEvent> events() const;

    void clear();

    std::string toChromeJson() const;
    std::string toText() const;

  private:
    void recordSlow(TraceCat c, TraceKind k, uint32_t func,
                    uint64_t pc, uint64_t a, uint32_t b);

    std::vector<TraceEvent> ring;
    size_t capMask = 0;
    uint64_t nextSeq = 0;
    uint32_t enabledMask = 0;
    uint8_t shard = 0;
};

/**
 * chrome://tracing "trace events" JSON over @p events (one instant
 * event per record; shard becomes the tid, seq the timestamp).
 */
std::string toChromeJson(const std::vector<TraceEvent> &events);

/** Plain-text dump, one event per line. */
std::string toText(const std::vector<TraceEvent> &events);

} // namespace obs
} // namespace ipds

#endif // IPDS_OBS_TRACE_H
