#ifndef IPDS_OBS_EXPORT_H
#define IPDS_OBS_EXPORT_H

/**
 * @file
 * Stats-to-registry exporters under the shared naming scheme
 * (obs/names.h). Every consumer of a stats block — the live Session
 * join, offline replay, and the detection service — goes through
 * these so the metric names AND registration order match everywhere;
 * bit-identity checks diff the toText() output line for line.
 *
 * They live in ipds_obs (not the Session facade) because the service
 * layer sits below session and needs them too. The stats structs are
 * plain data, so this only depends on their headers.
 */

#include <cstdint>

#include "inject/fault.h"
#include "ipds/detector.h"
#include "obs/metrics.h"
#include "timing/cpu.h"

namespace ipds {
namespace obs {

/**
 * Export @p s into @p reg under the shared naming scheme
 * (obs/names.h, ipds.detector.*). @p alarms is the alarm count.
 */
void exportDetectorStats(const DetectorStats &s, uint64_t alarms,
                         MetricsRegistry &reg);

/** Export @p s into @p reg (ipds.cpu.*, ipds.ring.*, ipds.engine.*). */
void exportTimingStats(const TimingStats &s, MetricsRegistry &reg);

/** Export @p s into @p reg (ipds.fault.*). */
void exportFaultStats(const FaultStats &s, MetricsRegistry &reg);

} // namespace obs
} // namespace ipds

#endif // IPDS_OBS_EXPORT_H
