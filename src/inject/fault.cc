#include "inject/fault.h"

namespace ipds {

FaultPlan
FaultPlan::fromSeed(uint64_t seed)
{
    FaultPlan p;
    if (seed == 0)
        return p; // disabled
    p.seed = seed;
    Rng r(seed);
    p.memEveryInsts = 4000 + static_cast<uint32_t>(r.below(8000));
    p.maxMemFaults = 2 + static_cast<uint32_t>(r.below(3));
    p.bsvEveryBranches = 200 + static_cast<uint32_t>(r.below(800));
    p.ringDropPermille = 5 + static_cast<uint32_t>(r.below(45));
    p.ringDupPermille = 5 + static_cast<uint32_t>(r.below(45));
    p.ctxEveryBranches = 300 + static_cast<uint32_t>(r.below(1200));
    p.lazyCtx = r.chance(0.5);
    p.spillPressure = r.chance(0.5);
    return p;
}

void
FaultPlan::applyTo(TimingConfig &cfg) const
{
    if (!enabled() || !spillPressure)
        return;
    // Tiny on-chip stacks: every deep call chain spills and fills, a
    // small ring keeps the chunk-flush backpressure path hot, and a
    // shallow depth cap exercises the graceful-degradation clamp.
    cfg.bsvStackBits = 256;
    cfg.bcvStackBits = 128;
    cfg.batStackBits = 4 * 1024;
    cfg.requestRingCapacity = 64;
    cfg.maxFrameDepth = 64;
}

std::vector<TamperSpec>
FaultPlan::memTamperSpecs(uint64_t salt) const
{
    std::vector<TamperSpec> out;
    if (!enabled() || memEveryInsts == 0 || maxMemFaults == 0)
        return out;
    Rng r(seed ^ (salt * 0x9e3779b97f4a7c15ULL) ^ 0xfa1753ULL);
    uint64_t step = 500 + r.below(memEveryInsts);
    for (uint32_t k = 0; k < maxMemFaults; k++) {
        TamperSpec t;
        t.atStep = step;
        t.randomStackTarget = true;
        t.seed = r.next() | 1;
        out.push_back(t);
        step += 1 + r.below(memEveryInsts);
    }
    return out;
}

FaultInjector::FaultInjector(const FaultPlan &plan_, uint64_t salt)
    : plan(plan_),
      rng(plan_.seed ^ (salt * 0xbf58476d1ce4e5b9ULL) ^ 0x1bdULL)
{}

void
FaultInjector::addTarget(ExecObserver *obs)
{
    targets.push_back(obs);
}

void
FaultInjector::addDetector(Detector *d)
{
    dets.push_back(d);
}

void
FaultInjector::addReference(ReferenceDetector *r)
{
    refs.push_back(r);
}

void
FaultInjector::setCpu(CpuModel *c)
{
    cpu = c;
}

bool
FaultInjector::wantsInstEvents() const
{
    bool any = false;
    for (const ExecObserver *t : targets)
        any = any || t->wantsInstEvents();
    fwdInst = any;
    return any;
}

void
FaultInjector::onFunctionEnter(FuncId f)
{
    for (ExecObserver *t : targets)
        t->onFunctionEnter(f);
}

void
FaultInjector::onFunctionExit(FuncId f)
{
    for (ExecObserver *t : targets)
        t->onFunctionExit(f);
}

uint32_t
FaultInjector::dueAtBranch()
{
    branchCount++;
    uint32_t due = 0;
    if (plan.bsvEveryBranches != 0 &&
        branchCount % plan.bsvEveryBranches == 0)
        due |= kDueBsv;
    if (plan.ctxEveryBranches != 0 &&
        branchCount % plan.ctxEveryBranches == 0)
        due |= kDueCtx;
    return due;
}

void
FaultInjector::applyDue()
{
    uint32_t due = pendingDue;
    pendingDue = 0;
    if (due & kDueBsv) {
        // One draw for slot and state, applied to EVERY registered
        // detector: the fast path and the reference model corrupt
        // identically, so differential oracles compare the *response*
        // to the fault, not divergent faults.
        uint32_t space = !dets.empty() ? dets[0]->topFrameSpace()
            : !refs.empty()            ? refs[0]->topFrameSpace()
                                       : 0;
        if (space != 0) {
            uint32_t slot = static_cast<uint32_t>(rng.below(space));
            BsvState s = static_cast<BsvState>(rng.below(3));
            bool hit = false;
            for (Detector *d : dets)
                hit = d->injectBsvState(slot, s) || hit;
            for (ReferenceDetector *r : refs)
                hit = r->injectBsvState(slot, s) || hit;
            if (sinkEv)
                sinkEv->onBsvFlip(slot, s);
            if (hit) {
                stat.bsvFlips++;
                if (trc)
                    trc->record(obs::kCatFault,
                                obs::TraceKind::FaultInject,
                                pendingFunc, pendingPc,
                                static_cast<uint64_t>(Kind::BsvFlip),
                                slot);
            }
        }
    }
    if ((due & kDueCtx) && cpu != nullptr) {
        uint64_t cycles = cpu->contextSwitch(plan.lazyCtx);
        stat.ctxSwitches++;
        if (sinkEv)
            sinkEv->onCtxSwitch(plan.lazyCtx);
        if (trc)
            trc->record(obs::kCatFault, obs::TraceKind::FaultInject,
                        pendingFunc, pendingPc,
                        static_cast<uint64_t>(Kind::CtxSwitch),
                        static_cast<uint32_t>(cycles));
    }
}

void
FaultInjector::onBranch(FuncId f, uint64_t pc, bool taken)
{
    for (ExecObserver *t : targets)
        t->onBranch(f, pc, taken);
    pendingDue = dueAtBranch();
    if (pendingDue != 0) {
        pendingFunc = f;
        pendingPc = pc;
        // No target consumes instruction events: the branch's onInst
        // will never arrive (threaded engine) or carries nothing any
        // target reads (switch engine), so the commit point is now.
        if (!fwdInst)
            applyDue();
    }
}

void
FaultInjector::onInst(const Inst &in, uint64_t mem_addr,
                      uint32_t mem_size, bool is_load)
{
    for (ExecObserver *t : targets)
        t->onInst(in, mem_addr, mem_size, is_load);
    // A branch-triggered fault lands after the Br's own commit event.
    if (pendingDue != 0)
        applyDue();
}

void
FaultInjector::forwardBatch(const EventBatch &b)
{
    for (ExecObserver *t : targets)
        t->onBatch(b);
}

void
FaultInjector::onBatch(const EventBatch &b)
{
    if (plan.bsvEveryBranches == 0 && plan.ctxEveryBranches == 0) {
        forwardBatch(b);
        return;
    }
    // Slice at fault points: every target sees [lo, i] — the
    // triggering branch's entry included — before the fault applies,
    // exactly the per-event commit order.
    uint32_t lo = 0;
    for (uint32_t i = 0; i < b.n; i++) {
        if (!b.ev[i].isBranch)
            continue;
        uint32_t due = dueAtBranch();
        if (due == 0)
            continue;
        EventBatch slice{b.func, b.ev + lo, i + 1 - lo};
        forwardBatch(slice);
        pendingDue = due;
        pendingFunc = b.func;
        pendingPc = b.ev[i].inst->pc;
        applyDue();
        lo = i + 1;
    }
    if (lo < b.n) {
        EventBatch rest{b.func, b.ev + lo, b.n - lo};
        forwardBatch(rest);
    }
}

} // namespace ipds
