#ifndef IPDS_INJECT_FAULT_H
#define IPDS_INJECT_FAULT_H

/**
 * @file
 * Deterministic fault injection for the IPDS stack.
 *
 * The subsystem answers one question: when the modelled hardware (or
 * the software around it) misbehaves, does the detector stack fail
 * loudly and identically everywhere, or does it silently diverge? A
 * FaultPlan describes *what* to break — protected-memory words, BSV
 * frame entries, request-ring traffic, table-stack pressure, context-
 * switch storms — and every decision is drawn from an RNG seeded by
 * the plan, so a run is exactly reproducible from (program, inputs,
 * plan).
 *
 * Fault classes and where they land:
 *
 *  - memory corruption: step-triggered Vm tampers (Vm::addTamper),
 *    fired at identical instruction boundaries by both VM engines;
 *  - BSV flips: Detector::injectBsvState / the ReferenceDetector
 *    mirror, applied to every registered detector with the SAME drawn
 *    slot and state so differential oracles stay in lockstep;
 *  - ring drop/duplicate: RequestRing::setFault, decided per popped
 *    request at drain boundaries (identical pop cadence across
 *    delivery modes keeps TimingStats identical);
 *  - spill pressure / depth storms: FaultPlan::applyTo shrinks the
 *    on-chip table stack and the request ring in the TimingConfig;
 *  - context-switch storms: CpuModel::contextSwitch every N branches.
 *
 * Delivery-mode equivalence is the design constraint that shapes the
 * FaultInjector: it is an *interposing* ExecObserver — the only
 * observer the Vm sees — that forwards events (and, in batched mode,
 * sliced sub-batches) to its targets in order and applies branch-
 * triggered faults at the same commit point in per-event and batched
 * delivery. A sibling observer could not do that: it would see a whole
 * EventBatch either before or after the detector consumed it.
 */

#include <cstdint>
#include <vector>

#include "ipds/detector.h"
#include "ipds/reference.h"
#include "obs/trace.h"
#include "support/rng.h"
#include "timing/config.h"
#include "timing/cpu.h"
#include "vm/vm.h"

namespace ipds {

/**
 * What to break and how often. A default-constructed plan (seed 0) is
 * disabled; every rate at 0 disables that fault class individually.
 */
struct FaultPlan
{
    /** Master RNG seed; 0 disables the whole plan. */
    uint64_t seed = 0;

    /** Corrupt a protected-memory word roughly every N instructions
     *  (step-triggered Vm tampers; 0: off). */
    uint32_t memEveryInsts = 0;
    /** Cap on armed memory tampers per run. */
    uint32_t maxMemFaults = 4;

    /** Flip one BSV entry of the live top frame every N committed
     *  branches (0: off). */
    uint32_t bsvEveryBranches = 0;

    /** Request-ring drain filter: drop / duplicate rates in permille
     *  (0/0: off). */
    uint32_t ringDropPermille = 0;
    uint32_t ringDupPermille = 0;

    /** Force a context switch every N committed branches (0: off). */
    uint32_t ctxEveryBranches = 0;
    /** Use the paper's lazy (§5.4) switch in storms. */
    bool lazyCtx = true;

    /** Shrink the on-chip table stack and the request ring so spill/
     *  fill and backpressure paths run constantly. */
    bool spillPressure = false;

    bool enabled() const { return seed != 0; }

    /**
     * A moderate every-class plan derived deterministically from
     * @p seed (the `run_protected --fault-seed` entry point).
     */
    static FaultPlan fromSeed(uint64_t seed);

    /** Apply the config-level classes (spill pressure) to @p cfg. */
    void applyTo(TimingConfig &cfg) const;

    /**
     * The step-triggered memory tampers this plan arms for run
     * @p salt (the session index): deterministic per (seed, salt),
     * increasing atStep, at most maxMemFaults entries.
     */
    std::vector<TamperSpec> memTamperSpecs(uint64_t salt) const;
};

/** Injection counters (obs/names.h ipds.fault.*). */
struct FaultStats
{
    uint64_t memTampers = 0;  ///< fired Vm tampers
    uint64_t bsvFlips = 0;    ///< BSV entries overwritten
    uint64_t ctxSwitches = 0; ///< forced context switches
    uint64_t ringDrops = 0;   ///< requests dropped at drains
    uint64_t ringDups = 0;    ///< requests duplicated at drains

    void
    merge(const FaultStats &o)
    {
        memTampers += o.memTampers;
        bsvFlips += o.bsvFlips;
        ctxSwitches += o.ctxSwitches;
        ringDrops += o.ringDrops;
        ringDups += o.ringDups;
    }

    bool
    operator==(const FaultStats &o) const
    {
        return memTampers == o.memTampers && bsvFlips == o.bsvFlips &&
            ctxSwitches == o.ctxSwitches &&
            ringDrops == o.ringDrops && ringDups == o.ringDups;
    }
};

/**
 * Sideband listener for faults that do NOT travel through the
 * ExecObserver event stream: BSV flips go straight into the detector
 * and context-switch storms straight into the CpuModel. A trace
 * recorder (src/replay) registers here so those out-of-band state
 * changes land in the recorded stream at their exact commit point —
 * the injector calls the sink immediately after applying each fault,
 * which is immediately after forwarding the triggering branch's
 * events to every target.
 */
class FaultEventSink
{
  public:
    virtual ~FaultEventSink() = default;

    /** injectBsvState(slot, s) was applied to every detector. */
    virtual void onBsvFlip(uint32_t slot, BsvState s) = 0;

    /** CpuModel::contextSwitch(lazy) was forced. */
    virtual void onCtxSwitch(bool lazy) = 0;
};

/**
 * The interposing observer. Wire it as the Vm's ONLY observer and
 * register the real observers as targets, in the order they would
 * normally be attached (detector first, then CpuModel, then extras):
 *
 *   FaultInjector inj(plan, sessionIndex);
 *   inj.addTarget(&det);  inj.addDetector(&det);
 *   inj.addTarget(&cpu);  inj.setCpu(&cpu);
 *   vm.addObserver(&inj);
 *
 * Events are forwarded unchanged; branch-triggered faults (BSV flips,
 * context-switch storms) fire at the commit point of the triggering
 * branch in every delivery mode — per-event by deferring to the Br's
 * own onInst when any target consumes instruction events, batched by
 * slicing the EventBatch after the branch's entry.
 */
class FaultInjector final : public ExecObserver
{
  public:
    /** Payload tag of kCatFault trace records. */
    enum class Kind : uint8_t
    {
        MemTamper = 0,
        BsvFlip = 1,
        CtxSwitch = 2,
    };

    /**
     * @p salt differentiates runs under one plan (the Session passes
     * the session index) without touching the plan itself.
     */
    FaultInjector(const FaultPlan &plan, uint64_t salt);

    /** Forward events to @p obs (kept in registration order). */
    void addTarget(ExecObserver *obs);
    /** Register a detector for BSV flips (also add it as a target). */
    void addDetector(Detector *d);
    /** Register the reference model for the SAME BSV flips. */
    void addReference(ReferenceDetector *r);
    /** Register the CPU model for context-switch storms. */
    void setCpu(CpuModel *cpu);
    /** Record kCatFault events into @p t (null: no tracing). */
    void setTracer(obs::Tracer *t) { trc = t; }
    /** Report applied out-of-band faults to @p s (trace capture). */
    void setEventSink(FaultEventSink *s) { sinkEv = s; }

    bool wantsInstEvents() const override;
    void onFunctionEnter(FuncId f) override;
    void onFunctionExit(FuncId f) override;
    void onBranch(FuncId f, uint64_t pc, bool taken) override;
    void onInst(const Inst &in, uint64_t mem_addr, uint32_t mem_size,
                bool is_load) override;
    void onBatch(const EventBatch &b) override;

    /** Branch-triggered counters (BSV flips, context switches). */
    const FaultStats &stats() const { return stat; }

  private:
    static constexpr uint32_t kDueBsv = 1;
    static constexpr uint32_t kDueCtx = 2;

    /** Count one committed branch; the due-fault mask for it. */
    uint32_t dueAtBranch();
    /** Apply (and clear) the pending due mask. */
    void applyDue();
    void forwardBatch(const EventBatch &b);

    FaultPlan plan;
    Rng rng;
    std::vector<ExecObserver *> targets;
    std::vector<Detector *> dets;
    std::vector<ReferenceDetector *> refs;
    CpuModel *cpu = nullptr;
    obs::Tracer *trc = nullptr;
    FaultEventSink *sinkEv = nullptr;

    uint64_t branchCount = 0;
    uint32_t pendingDue = 0;
    FuncId pendingFunc = kNoFunc;
    uint64_t pendingPc = 0;
    /** Any target consumes instruction events (cached by the Vm's
     *  wantsInstEvents probe at run start). */
    mutable bool fwdInst = false;
    FaultStats stat;
};

} // namespace ipds

#endif // IPDS_INJECT_FAULT_H
