#ifndef IPDS_ANALYSIS_MEMCONST_H
#define IPDS_ANALYSIS_MEMCONST_H

/**
 * @file
 * Memory constant propagation: identify scalar locations that hold one
 * compile-time constant at every load.
 *
 * SUIF (the paper's compiler) runs classic scalar optimizations before
 * the correlation analysis, so comparisons against configuration
 * scalars like `threshold = 4` reach the analysis as compares against
 * constants. This pass recovers the same effect: a location qualifies
 * iff
 *   - it is a whole scalar object, never hit by indirect stores or
 *     call effects,
 *   - every direct store to it stores the same constant c,
 *   - every load of it is dominated by one of those stores (locals),
 *     or the object's initializer equals c (globals),
 * in which case loads of it may be treated as the literal c.
 *
 * Note the soundness direction: in any benign execution the location
 * always reads c, so no false positive can result. If an ATTACK
 * corrupts the location, branches modelled with c diverge — which is
 * detection, not a false positive.
 */

#include <map>

#include "analysis/effects.h"
#include "analysis/memloc.h"

namespace ipds {

/** The memory-constant solution for a module. */
class MemConsts
{
  public:
    MemConsts(const Module &mod, const LocTable &locs,
              const Effects &fx);

    /** If @p l always loads constant @p out, return true. */
    bool constLoc(LocId l, int64_t &out) const;

    /** Number of qualifying locations (reports). */
    size_t count() const { return consts.size(); }

  private:
    std::map<LocId, int64_t> consts;
};

} // namespace ipds

#endif // IPDS_ANALYSIS_MEMCONST_H
