#ifndef IPDS_ANALYSIS_POINTSTO_H
#define IPDS_ANALYSIS_POINTSTO_H

/**
 * @file
 * Flow-insensitive, field-insensitive points-to analysis (Andersen
 * style), standing in for the Wilson–Lam pass the paper runs under SUIF.
 *
 * The result answers one question for the rest of the system: which
 * memory objects can a given address vreg reference? Any failure to
 * resolve returns Top, and every client treats Top conservatively, so
 * imprecision can only reduce detection, never add false positives.
 */

#include <map>
#include <set>
#include <vector>

#include "analysis/defmap.h"
#include "analysis/memloc.h"
#include "ir/ir.h"

namespace ipds {

/** A may-point-to set: either Top (anything) or a set of objects. */
struct ObjSet
{
    bool top = false;
    std::set<ObjectId> objs;

    bool empty() const { return !top && objs.empty(); }

    /** Union @p o into this; returns true iff this changed. */
    bool merge(const ObjSet &o);

    /** Add a single object; returns true iff this changed. */
    bool add(ObjectId obj);

    /** Make this Top; returns true iff this changed. */
    bool setTop();
};

/**
 * Module-wide points-to solution.
 */
class PointsTo
{
  public:
    /** Build and solve for @p mod. @p locs must outlive this object. */
    PointsTo(const Module &mod, const LocTable &locs);

    /**
     * Objects the value of vreg @p v (in function @p f) may reference
     * when used as an address.
     */
    ObjSet resolve(FuncId f, Vreg v) const;

    /**
     * Resolve @p v to a single (object, constant offset) if its def
     * chain is AddrOf plus constant adjustments only. Used to identify
     * the exact buffers read by pure builtins (strncmp correlation).
     *
     * With @p interproc, a chain may also root at a parameter whose
     * every call site passes the same exact (object, offset) — the
     * monomorphic-argument case, which lets `check(user)`-style
     * helpers classify their internal strcmp branches.
     *
     * Returns false if not exactly resolvable.
     */
    bool resolveExact(FuncId f, Vreg v, ObjectId &obj, int64_t &off,
                      bool interproc = false) const;

    /** Exact (object, offset) of parameter @p idx if every call site
     *  agrees; false otherwise. */
    bool argExact(FuncId f, uint32_t idx, ObjectId &obj,
                  int64_t &off) const;

    /** Points-to set of function @p f's parameter @p idx. */
    const ObjSet &argSet(FuncId f, uint32_t idx) const;

  private:
    void solve();
    void solveExactArgs();
    ObjSet eval(FuncId f, Vreg v, std::vector<int8_t> &visiting) const;

    /** Exact argument binding for the interprocedural case. */
    struct ExactArg
    {
        bool valid = false;
        ObjectId obj = kNoObject;
        int64_t off = 0;
    };
    std::vector<std::vector<ExactArg>> exactArgs;

    /**
     * Parameter spill slots that provably always hold the incoming
     * argument: written exactly once (the entry spill of GetArg i)
     * and never address-taken. Loads from them read the argument.
     */
    std::map<ObjectId, uint32_t> paramSlots;
    void findParamSlots();

    const Module &mod;
    const LocTable &locs;
    std::vector<DefMap> defMaps;

    /** Pointer values stored into each location. */
    std::vector<ObjSet> slotSets;
    /** Pointer values stored indirectly into each object. */
    std::vector<ObjSet> objIndirect;
    /** Per (function, arg) incoming pointer sets. */
    std::vector<std::vector<ObjSet>> argSets;
    /** Per function return-value pointer sets. */
    std::vector<ObjSet> retSets;
    /** Pointers stored through unresolved addresses. */
    ObjSet escaped;

    ObjSet emptySet;
};

} // namespace ipds

#endif // IPDS_ANALYSIS_POINTSTO_H
