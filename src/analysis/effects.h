#ifndef IPDS_ANALYSIS_EFFECTS_H
#define IPDS_ANALYSIS_EFFECTS_H

/**
 * @file
 * Memory side-effect summaries.
 *
 * Implements the paper's §5.3 treatment of calls: every call site is
 * converted into (possibly aliased) pseudo stores. Builtins use exact
 * effect tables; user functions get a bottom-up may-write summary over
 * the call graph; anything unresolvable clobbers everything.
 *
 * The per-instruction interface is what the BAT construction consumes:
 * for each instruction, which locations does it (may-)clobber, and if
 * it is a direct load, which location does it read.
 */

#include <vector>

#include "analysis/memloc.h"
#include "analysis/pointsto.h"
#include "ir/ir.h"

namespace ipds {

/**
 * Set of memory bytes an instruction may write, at three granularities:
 * everything, whole objects (indirect stores, call effects), and exact
 * byte ranges (direct stores). Keeping ranges and objects separate —
 * rather than expanding to enumerated locations — matters because
 * pure-call read sets cover buffer bytes no scalar location names.
 */
struct ClobberSet
{
    /** True: clobbers every non-const byte in memory (give up). */
    bool all = false;
    /** Objects clobbered in their entirety. */
    std::vector<ObjectId> objects;
    /** Exact byte ranges written: (object, offset, size). */
    std::vector<std::tuple<ObjectId, uint32_t, uint32_t>> ranges;

    bool empty() const
    {
        return !all && objects.empty() && ranges.empty();
    }

    /** May this clobber write any byte of location @p l? */
    bool hitsLoc(const LocTable &locs, LocId l) const;

    /** May this clobber write any byte of [off, off+len) in @p obj
     *  (len < 0 meaning "to the end of the object")? */
    bool hitsRange(const Module &mod, ObjectId obj, int64_t off,
                   int64_t len) const;
};

/**
 * Module-wide effect analysis. Construct once per compiled module.
 */
class Effects
{
  public:
    Effects(const Module &mod, const LocTable &locs, const PointsTo &pt);

    /** Locations instruction @p in (in function @p f) may clobber. */
    ClobberSet clobbers(FuncId f, const Inst &in) const;

    /**
     * May-write object summary of calling function @p f (non-local
     * state only, per §5.3: writes to the callee's own locals are
     * invisible after return).
     */
    const ObjSet &funcWrites(FuncId f) const { return writes[f]; }

    /** Convert an object set into a whole-object clobber set. */
    ClobberSet objectClobbers(const ObjSet &objs) const;

  private:
    void solve();
    /** Clobbers of one instruction at object granularity. */
    bool instWrites(FuncId f, const Inst &in, ObjSet &out) const;

    const Module &mod;
    const LocTable &locs;
    const PointsTo &pt;
    std::vector<ObjSet> writes;
};

} // namespace ipds

#endif // IPDS_ANALYSIS_EFFECTS_H
