#include "analysis/memconst.h"

#include "analysis/constfold.h"
#include "analysis/defmap.h"
#include "analysis/dominators.h"
#include "support/diag.h"

namespace ipds {

namespace {

/** Little-endian constant from an object's initializer bytes. */
int64_t
initValue(const MemObject &obj)
{
    uint64_t v = 0;
    for (uint32_t i = 0; i < obj.size && i < 8; i++) {
        uint8_t b = i < obj.init.size() ? obj.init[i] : 0;
        v |= static_cast<uint64_t>(b) << (8 * i);
    }
    if (obj.size == 1)
        return static_cast<int64_t>(v & 0xff);
    return static_cast<int64_t>(v);
}

} // namespace

MemConsts::MemConsts(const Module &mod, const LocTable &locs,
                     const Effects &fx)
{
    struct Candidate
    {
        bool alive = true;
        bool haveConst = false;
        int64_t value = 0;
        /** Const-store sites (function-local; locals only). */
        std::vector<InstRef> stores;
        std::vector<InstRef> loads;
    };

    std::map<LocId, Candidate> cands;
    for (LocId l = 0; l < locs.size(); l++) {
        const MemLoc &ml = locs.loc(l);
        const MemObject &obj = mod.objects[ml.obj];
        if (obj.isArray || ml.off != 0 || ml.size != obj.size)
            continue;
        if (obj.kind == ObjectKind::Const)
            continue; // handled by constant folding of init loads? no:
                      // const scalars do not occur in MiniC.
        cands.emplace(l, Candidate{});
    }

    // One pass over the whole module classifies every candidate.
    for (const auto &fn : mod.functions) {
        DefMap dm(fn);
        for (const auto &bb : fn.blocks) {
            for (uint32_t i = 0; i < bb.insts.size(); i++) {
                const Inst &in = bb.insts[i];
                if (in.op == Op::Load) {
                    LocId l = locs.forInst(in);
                    auto it = cands.find(l);
                    if (it != cands.end())
                        it->second.loads.push_back({bb.id, i});
                    continue;
                }
                ClobberSet cs = fx.clobbers(fn.id, in);
                if (cs.empty())
                    continue;
                for (auto &[l, cand] : cands) {
                    if (!cand.alive)
                        continue;
                    bool direct = in.op == Op::Store &&
                        locs.forInst(in) == l;
                    if (direct) {
                        int64_t c;
                        if (!constValue(fn, dm, in.srcA, c)) {
                            cand.alive = false;
                            continue;
                        }
                        if (cand.haveConst && cand.value != c) {
                            cand.alive = false;
                            continue;
                        }
                        cand.haveConst = true;
                        cand.value = c;
                        cand.stores.push_back({bb.id, i});
                    } else if (cs.hitsLoc(locs, l)) {
                        // Partial overlap, indirect store or call
                        // effect: the location is not a constant.
                        cand.alive = false;
                    }
                }
            }
        }
    }

    for (auto &[l, cand] : cands) {
        if (!cand.alive)
            continue;
        const MemLoc &ml = locs.loc(l);
        const MemObject &obj = mod.objects[ml.obj];
        if (obj.kind == ObjectKind::Global) {
            int64_t iv = initValue(obj);
            if (cand.haveConst && cand.value != iv)
                continue; // stores disagree with the initial image
            consts.emplace(l, cand.haveConst ? cand.value : iv);
            continue;
        }
        // Locals: value undefined before the first store, so every
        // load must be dominated by a const store.
        if (!cand.haveConst || cand.loads.empty())
            continue;
        const Function &fn = mod.functions[obj.owner];
        Dominators dom(fn);
        bool ok = true;
        for (const InstRef &ld : cand.loads) {
            bool dominated = false;
            for (const InstRef &st : cand.stores) {
                if (st.block == ld.block) {
                    if (st.index < ld.index) {
                        dominated = true;
                        break;
                    }
                } else if (dom.dominates(st.block, ld.block)) {
                    dominated = true;
                    break;
                }
            }
            if (!dominated) {
                ok = false;
                break;
            }
        }
        if (ok)
            consts.emplace(l, cand.value);
    }
}

bool
MemConsts::constLoc(LocId l, int64_t &out) const
{
    auto it = consts.find(l);
    if (it == consts.end())
        return false;
    out = it->second;
    return true;
}

} // namespace ipds
