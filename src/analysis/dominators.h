#ifndef IPDS_ANALYSIS_DOMINATORS_H
#define IPDS_ANALYSIS_DOMINATORS_H

/**
 * @file
 * Dominator tree (iterative Cooper–Harvey–Kennedy). Used by reports and
 * tests; the BAT construction itself works on edge regions and does not
 * need dominance, but downstream tooling (correlation explorer) uses it
 * to present guard relationships.
 */

#include <vector>

#include "ir/ir.h"

namespace ipds {

/** Immediate-dominator tree for one function. */
class Dominators
{
  public:
    explicit Dominators(const Function &fn);

    /** Immediate dominator of @p b; entry block dominates itself. */
    BlockId idom(BlockId b) const { return idoms[b]; }

    /** True if block @p a dominates block @p b. */
    bool dominates(BlockId a, BlockId b) const;

    /** True if @p b is reachable from the entry block. */
    bool reachable(BlockId b) const { return rpoIndex[b] >= 0; }

  private:
    std::vector<BlockId> idoms;
    std::vector<int32_t> rpoIndex;
};

} // namespace ipds

#endif // IPDS_ANALYSIS_DOMINATORS_H
