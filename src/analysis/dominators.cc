#include "analysis/dominators.h"

#include <algorithm>

#include "support/diag.h"

namespace ipds {

Dominators::Dominators(const Function &fn)
{
    size_t n = fn.blocks.size();
    idoms.assign(n, kNoBlock);
    rpoIndex.assign(n, -1);

    // Reverse postorder over reachable blocks.
    std::vector<BlockId> order;
    std::vector<int8_t> state(n, 0);
    std::vector<std::pair<BlockId, size_t>> stack;
    stack.emplace_back(0, 0);
    state[0] = 1;
    while (!stack.empty()) {
        auto &[b, next] = stack.back();
        auto succs = fn.blocks[b].successors();
        if (next < succs.size()) {
            BlockId s = succs[next++];
            if (!state[s]) {
                state[s] = 1;
                stack.emplace_back(s, 0);
            }
        } else {
            order.push_back(b);
            stack.pop_back();
        }
    }
    std::reverse(order.begin(), order.end());
    for (size_t i = 0; i < order.size(); i++)
        rpoIndex[order[i]] = static_cast<int32_t>(i);

    // Predecessors restricted to reachable blocks.
    std::vector<std::vector<BlockId>> preds(n);
    for (BlockId b : order)
        for (BlockId s : fn.blocks[b].successors())
            preds[s].push_back(b);

    auto intersect = [&](BlockId a, BlockId b) {
        while (a != b) {
            while (rpoIndex[a] > rpoIndex[b])
                a = idoms[a];
            while (rpoIndex[b] > rpoIndex[a])
                b = idoms[b];
        }
        return a;
    };

    idoms[0] = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        for (BlockId b : order) {
            if (b == 0)
                continue;
            BlockId newIdom = kNoBlock;
            for (BlockId p : preds[b]) {
                if (idoms[p] == kNoBlock)
                    continue;
                newIdom = newIdom == kNoBlock ? p
                                              : intersect(p, newIdom);
            }
            if (newIdom != kNoBlock && idoms[b] != newIdom) {
                idoms[b] = newIdom;
                changed = true;
            }
        }
    }
}

bool
Dominators::dominates(BlockId a, BlockId b) const
{
    if (!reachable(b) || !reachable(a))
        return false;
    BlockId cur = b;
    while (true) {
        if (cur == a)
            return true;
        if (cur == 0)
            return a == 0;
        cur = idoms[cur];
        if (cur == kNoBlock)
            return false;
    }
}

} // namespace ipds
