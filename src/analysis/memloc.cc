#include "analysis/memloc.h"

#include "support/diag.h"

namespace ipds {

LocTable::LocTable(const Module &mod)
{
    byObject.resize(mod.objects.size());
    // Whole scalar objects are always locations: they are the natural
    // attack targets even if a particular build never loads them.
    for (const auto &obj : mod.objects) {
        if (!obj.isArray)
            intern(mod, obj.id, 0, static_cast<uint8_t>(obj.size));
    }
    // Plus every (object, offset, size) touched by a direct access.
    for (const auto &fn : mod.functions) {
        for (const auto &bb : fn.blocks) {
            for (const auto &in : bb.insts) {
                if (in.op == Op::Load || in.op == Op::Store) {
                    intern(mod, in.object,
                           static_cast<uint32_t>(in.imm),
                           static_cast<uint8_t>(in.size));
                }
            }
        }
    }
}

LocId
LocTable::intern(const Module &mod, ObjectId obj, uint32_t off,
                 uint8_t size)
{
    auto key = std::make_tuple(obj, off, size);
    auto it = index.find(key);
    if (it != index.end())
        return it->second;
    MemLoc l;
    l.obj = obj;
    l.off = off;
    l.size = size;
    l.name = off == 0 ? mod.objects[obj].name
                      : strprintf("%s+%u", mod.objects[obj].name.c_str(),
                                  off);
    LocId id = static_cast<LocId>(locs.size());
    locs.push_back(std::move(l));
    index.emplace(key, id);
    byObject[obj].push_back(id);
    return id;
}

LocId
LocTable::find(ObjectId obj, uint32_t off, uint8_t size) const
{
    auto it = index.find(std::make_tuple(obj, off, size));
    return it == index.end() ? kNoLoc : it->second;
}

LocId
LocTable::forInst(const Inst &in) const
{
    if (in.op != Op::Load && in.op != Op::Store)
        return kNoLoc;
    return find(in.object, static_cast<uint32_t>(in.imm),
                static_cast<uint8_t>(in.size));
}

const std::vector<LocId> &
LocTable::objectLocs(ObjectId obj) const
{
    if (obj >= byObject.size())
        return empty;
    return byObject[obj];
}

bool
LocTable::overlap(LocId a, LocId b) const
{
    const MemLoc &x = locs[a];
    const MemLoc &y = locs[b];
    if (x.obj != y.obj)
        return false;
    return x.off < y.off + y.size && y.off < x.off + x.size;
}

std::vector<LocId>
LocTable::overlapping(ObjectId obj, uint32_t off, uint32_t size) const
{
    std::vector<LocId> out;
    for (LocId id : objectLocs(obj)) {
        const MemLoc &l = locs[id];
        if (l.off < off + size && off < l.off + l.size)
            out.push_back(id);
    }
    return out;
}

} // namespace ipds
