#include "analysis/effects.h"

#include "support/diag.h"

namespace ipds {

Effects::Effects(const Module &mod, const LocTable &locs,
                 const PointsTo &pt)
    : mod(mod), locs(locs), pt(pt)
{
    writes.resize(mod.functions.size());
    solve();
}

/**
 * Object-granularity may-writes of a single instruction, EXCLUDING the
 * transitive effects of user-function calls (those come from the
 * summary fixpoint). Returns false if nothing relevant is written.
 */
bool
Effects::instWrites(FuncId f, const Inst &in, ObjSet &out) const
{
    switch (in.op) {
      case Op::Store:
        out.add(in.object);
        return true;
      case Op::StoreInd: {
        ObjSet tgt = pt.resolve(f, in.srcA);
        out.merge(tgt);
        return true;
      }
      case Op::Call: {
        if (in.builtin == Builtin::None)
            return false; // handled via summary
        const auto &fx = builtinEffects(in.builtin);
        if (fx.writesParams == 0)
            return false;
        for (uint32_t i = 0; i < in.args.size(); i++) {
            if (!(fx.writesParams & (1u << i)))
                continue;
            ObjSet tgt = pt.resolve(f, in.args[i]);
            out.merge(tgt);
        }
        return true;
      }
      default:
        return false;
    }
}

void
Effects::solve()
{
    // Bottom-up fixpoint over the call graph; recursion converges
    // because sets only grow.
    bool changed = true;
    int rounds = 0;
    while (changed) {
        changed = false;
        if (++rounds > 1000)
            panic("Effects::solve did not converge");
        for (const auto &fn : mod.functions) {
            ObjSet acc = writes[fn.id];
            for (const auto &bb : fn.blocks) {
                for (const auto &in : bb.insts) {
                    ObjSet w;
                    instWrites(fn.id, in, w);
                    acc.merge(w);
                    if (in.op == Op::Call &&
                        in.builtin == Builtin::None) {
                        acc.merge(writes[in.callee]);
                    }
                }
            }
            // Drop this function's own locals: invisible after return.
            if (!acc.top) {
                for (auto it = acc.objs.begin();
                     it != acc.objs.end();) {
                    const MemObject &obj = mod.objects[*it];
                    if (obj.kind == ObjectKind::Local &&
                        obj.owner == fn.id) {
                        it = acc.objs.erase(it);
                    } else {
                        ++it;
                    }
                }
            }
            if (!(acc.top == writes[fn.id].top &&
                  acc.objs == writes[fn.id].objs)) {
                writes[fn.id] = std::move(acc);
                changed = true;
            }
        }
    }
}

bool
ClobberSet::hitsLoc(const LocTable &locs, LocId l) const
{
    if (all)
        return true;
    const MemLoc &m = locs.loc(l);
    for (ObjectId obj : objects)
        if (obj == m.obj)
            return true;
    for (const auto &[obj, off, size] : ranges) {
        if (obj == m.obj && off < m.off + m.size && m.off < off + size)
            return true;
    }
    return false;
}

bool
ClobberSet::hitsRange(const Module &mod, ObjectId target, int64_t off,
                      int64_t len) const
{
    if (all)
        return true;
    int64_t end = len < 0 ? static_cast<int64_t>(mod.objects[target].size)
                          : off + len;
    for (ObjectId obj : objects)
        if (obj == target)
            return true;
    for (const auto &[obj, roff, rsize] : ranges) {
        if (obj != target)
            continue;
        int64_t rlo = static_cast<int64_t>(roff);
        int64_t rhi = rlo + static_cast<int64_t>(rsize);
        if (rlo < end && off < rhi)
            return true;
    }
    return false;
}

ClobberSet
Effects::objectClobbers(const ObjSet &objs) const
{
    ClobberSet out;
    if (objs.top) {
        out.all = true;
        return out;
    }
    for (ObjectId obj : objs.objs) {
        if (mod.objects[obj].kind == ObjectKind::Const)
            continue; // read-only memory is secure (paper §3)
        out.objects.push_back(obj);
    }
    return out;
}

ClobberSet
Effects::clobbers(FuncId f, const Inst &in) const
{
    switch (in.op) {
      case Op::Store: {
        // Direct store: clobbers exactly its byte range.
        ClobberSet out;
        out.ranges.emplace_back(in.object,
                                static_cast<uint32_t>(in.imm),
                                static_cast<uint32_t>(in.size));
        return out;
      }
      case Op::StoreInd: {
        ObjSet tgt = pt.resolve(f, in.srcA);
        return objectClobbers(tgt);
      }
      case Op::Call: {
        ObjSet w;
        if (in.builtin != Builtin::None) {
            instWrites(f, in, w);
        } else {
            // PointsTo already folded actual arguments into the
            // callee's parameter sets, so the callee's summary covers
            // writes through pointers we pass in.
            w = writes[in.callee];
        }
        return objectClobbers(w);
      }
      default:
        return {};
    }
}

} // namespace ipds
