#ifndef IPDS_ANALYSIS_CONSTFOLD_H
#define IPDS_ANALYSIS_CONSTFOLD_H

/**
 * @file
 * Compile-time evaluation of vregs whose def chains bottom out in
 * constants. Shared by points-to (exact buffer offsets), the branch
 * correlation analysis (compare-against-constant extraction, pure-call
 * scalar arguments) and tests.
 */

#include "analysis/defmap.h"
#include "ir/ir.h"

namespace ipds {

/**
 * If @p v evaluates to a compile-time constant, store it in @p out and
 * return true. Handles ConstInt and Bin over constant operands.
 */
bool constValue(const Function &fn, const DefMap &dm, Vreg v,
                int64_t &out);

} // namespace ipds

#endif // IPDS_ANALYSIS_CONSTFOLD_H
