#include "analysis/pointsto.h"

#include "analysis/constfold.h"
#include "support/diag.h"

namespace ipds {

bool
ObjSet::merge(const ObjSet &o)
{
    if (top)
        return false;
    if (o.top) {
        top = true;
        objs.clear();
        return true;
    }
    bool changed = false;
    for (ObjectId id : o.objs)
        changed |= objs.insert(id).second;
    return changed;
}

bool
ObjSet::add(ObjectId obj)
{
    if (top)
        return false;
    return objs.insert(obj).second;
}

bool
ObjSet::setTop()
{
    if (top)
        return false;
    top = true;
    objs.clear();
    return true;
}

PointsTo::PointsTo(const Module &mod, const LocTable &locs)
    : mod(mod), locs(locs)
{
    defMaps.reserve(mod.functions.size());
    for (const auto &fn : mod.functions)
        defMaps.emplace_back(fn);
    slotSets.resize(locs.size());
    objIndirect.resize(mod.objects.size());
    argSets.resize(mod.functions.size());
    for (const auto &fn : mod.functions)
        argSets[fn.id].resize(fn.numParams);
    retSets.resize(mod.functions.size());
    exactArgs.resize(mod.functions.size());
    for (const auto &fn : mod.functions)
        exactArgs[fn.id].resize(fn.numParams);
    solve();
    findParamSlots();
    solveExactArgs();
}

void
PointsTo::findParamSlots()
{
    // Count direct stores per object and find address exposures.
    std::map<ObjectId, uint32_t> storeCount;
    std::set<ObjectId> addressTaken;
    std::map<ObjectId, int64_t> spillArg; // slot -> GetArg index

    for (const auto &fn : mod.functions) {
        DefMap dm(fn);
        for (const auto &bb : fn.blocks) {
            for (const auto &in : bb.insts) {
                if (in.op == Op::AddrOf) {
                    addressTaken.insert(in.object);
                } else if (in.op == Op::Store) {
                    storeCount[in.object]++;
                    // Is this the entry spill `store slot, getarg(i)`?
                    InstRef r = dm.def(in.srcA);
                    if (r.valid()) {
                        const Inst &def =
                            fn.blocks[r.block].insts[r.index];
                        if (def.op == Op::GetArg && in.imm == 0)
                            spillArg[in.object] = def.imm;
                    }
                }
            }
        }
    }
    for (const auto &[obj, arg] : spillArg) {
        if (storeCount[obj] == 1 && !addressTaken.count(obj) &&
            !mod.objects[obj].isArray &&
            mod.objects[obj].kind == ObjectKind::Local) {
            paramSlots.emplace(obj, static_cast<uint32_t>(arg));
        }
    }
}

/**
 * Evaluate the points-to set of a vreg by walking its def DAG. The
 * @p visiting vector breaks cycles (there are none in a def DAG, but
 * loads re-enter through slot sets which are read, not recursed).
 */
ObjSet
PointsTo::eval(FuncId f, Vreg v, std::vector<int8_t> &visiting) const
{
    if (v == kNoVreg)
        return {};
    if (visiting[v]) {
        // Defensive: a def DAG cannot cycle, but never hang if it does.
        ObjSet t;
        t.setTop();
        return t;
    }
    visiting[v] = 1;
    const Function &fn = mod.functions[f];
    InstRef r = defMaps[f].def(v);
    ObjSet out;
    if (!r.valid()) {
        out.setTop();
        visiting[v] = 0;
        return out;
    }
    const Inst &in = fn.blocks[r.block].insts[r.index];
    switch (in.op) {
      case Op::ConstInt:
        break; // integer literal: points nowhere
      case Op::AddrOf:
        out.add(in.object);
        break;
      case Op::Bin:
        if (in.bin == BinOp::Add || in.bin == BinOp::Sub) {
            // Pointer arithmetic stays within the object (language
            // semantics; runtime overflow is the attack, not the norm).
            out.merge(eval(f, in.srcA, visiting));
            out.merge(eval(f, in.srcB, visiting));
        } else {
            // Any other operator on a pointer loses track of it.
            ObjSet a = eval(f, in.srcA, visiting);
            ObjSet b = eval(f, in.srcB, visiting);
            if (!a.empty() || !b.empty())
                out.setTop();
        }
        break;
      case Op::Cmp:
        break;
      case Op::Load: {
        LocId l = locs.forInst(in);
        if (l == kNoLoc) {
            out.setTop();
        } else {
            out.merge(slotSets[l]);
            out.merge(objIndirect[in.object]);
        }
        break;
      }
      case Op::LoadInd: {
        ObjSet addr = eval(f, in.srcA, visiting);
        if (addr.top) {
            out.setTop();
        } else {
            for (ObjectId obj : addr.objs) {
                for (LocId l : locs.objectLocs(obj))
                    out.merge(slotSets[l]);
                out.merge(objIndirect[obj]);
            }
            out.merge(escaped);
        }
        break;
      }
      case Op::GetArg:
        out.merge(argSets[f][static_cast<size_t>(in.imm)]);
        break;
      case Op::Call:
        if (in.builtin == Builtin::None)
            out.merge(retSets[in.callee]);
        // Builtins never return pointers in this language.
        break;
      default:
        out.setTop();
        break;
    }
    visiting[v] = 0;
    return out;
}

void
PointsTo::solve()
{
    bool changed = true;
    int rounds = 0;
    while (changed) {
        changed = false;
        if (++rounds > 1000)
            panic("PointsTo::solve did not converge");
        for (const auto &fn : mod.functions) {
            std::vector<int8_t> visiting(fn.nextVreg, 0);
            for (const auto &bb : fn.blocks) {
                for (const auto &in : bb.insts) {
                    switch (in.op) {
                      case Op::Store: {
                        LocId l = locs.forInst(in);
                        ObjSet v = eval(fn.id, in.srcA, visiting);
                        if (v.empty())
                            break;
                        if (l == kNoLoc)
                            changed |= escaped.merge(v);
                        else
                            changed |= slotSets[l].merge(v);
                        break;
                      }
                      case Op::StoreInd: {
                        ObjSet v = eval(fn.id, in.srcB, visiting);
                        if (v.empty())
                            break;
                        ObjSet addr = eval(fn.id, in.srcA, visiting);
                        if (addr.top) {
                            changed |= escaped.merge(v);
                            break;
                        }
                        for (ObjectId obj : addr.objs)
                            changed |= objIndirect[obj].merge(v);
                        break;
                      }
                      case Op::Call: {
                        if (in.builtin != Builtin::None)
                            break;
                        auto &callee = argSets[in.callee];
                        for (size_t i = 0;
                             i < in.args.size() && i < callee.size();
                             i++) {
                            ObjSet v =
                                eval(fn.id, in.args[i], visiting);
                            changed |= callee[i].merge(v);
                        }
                        break;
                      }
                      case Op::Ret: {
                        if (in.srcA != kNoVreg) {
                            ObjSet v = eval(fn.id, in.srcA, visiting);
                            changed |= retSets[fn.id].merge(v);
                        }
                        break;
                      }
                      default:
                        break;
                    }
                }
            }
        }
    }
}

/**
 * Fixpoint over the call graph: a parameter binds to an exact
 * (object, offset) iff every call site of its function passes exactly
 * that address. Chains through intermediate wrappers resolve over
 * successive rounds (a caller's argument may itself be a bound
 * parameter).
 */
void
PointsTo::solveExactArgs()
{
    bool converged = false;
    for (int round = 0; round < 32 && !converged; round++) {
        // Candidate per (callee, arg): unset / value / conflict.
        struct Cand
        {
            int state = 0; // 0 = unseen, 1 = value, 2 = conflict
            ObjectId obj = kNoObject;
            int64_t off = 0;
        };
        std::vector<std::vector<Cand>> cands(mod.functions.size());
        for (const auto &fn : mod.functions)
            cands[fn.id].resize(fn.numParams);

        for (const auto &fn : mod.functions) {
            for (const auto &bb : fn.blocks) {
                for (const auto &in : bb.insts) {
                    if (in.op != Op::Call ||
                        in.builtin != Builtin::None)
                        continue;
                    auto &cs = cands[in.callee];
                    for (uint32_t i = 0;
                         i < in.args.size() && i < cs.size(); i++) {
                        Cand &c = cs[i];
                        if (c.state == 2)
                            continue;
                        ObjectId obj;
                        int64_t off;
                        if (!resolveExact(fn.id, in.args[i], obj,
                                          off, true)) {
                            c.state = 2;
                            continue;
                        }
                        if (c.state == 0) {
                            c.state = 1;
                            c.obj = obj;
                            c.off = off;
                        } else if (c.obj != obj || c.off != off) {
                            c.state = 2;
                        }
                    }
                }
            }
        }

        bool changed = false;
        for (const auto &fn : mod.functions) {
            for (uint32_t i = 0; i < fn.numParams; i++) {
                const Cand &c = cands[fn.id][i];
                ExactArg next;
                if (c.state == 1) {
                    next.valid = true;
                    next.obj = c.obj;
                    next.off = c.off;
                }
                ExactArg &cur = exactArgs[fn.id][i];
                if (cur.valid != next.valid || cur.obj != next.obj ||
                    cur.off != next.off) {
                    cur = next;
                    changed = true;
                }
            }
        }
        converged = !changed;
    }
    if (!converged) {
        // Only a self-consistent fixed point is provably sound; an
        // unconverged state is not, so drop everything (detection
        // loss only, never a false positive).
        for (auto &perFunc : exactArgs)
            for (auto &e : perFunc)
                e = ExactArg{};
    }
}

bool
PointsTo::argExact(FuncId f, uint32_t idx, ObjectId &obj,
                   int64_t &off) const
{
    if (idx >= exactArgs[f].size())
        return false;
    const ExactArg &e = exactArgs[f][idx];
    if (!e.valid)
        return false;
    obj = e.obj;
    off = e.off;
    return true;
}

ObjSet
PointsTo::resolve(FuncId f, Vreg v) const
{
    std::vector<int8_t> visiting(mod.functions[f].nextVreg, 0);
    return eval(f, v, visiting);
}

bool
PointsTo::resolveExact(FuncId f, Vreg v, ObjectId &obj, int64_t &off,
                       bool interproc) const
{
    const Function &fn = mod.functions[f];
    const DefMap &dm = defMaps[f];
    int64_t acc = 0;
    Vreg cur = v;
    for (int depth = 0; depth < 64; depth++) {
        InstRef r = dm.def(cur);
        if (!r.valid())
            return false;
        const Inst &in = fn.blocks[r.block].insts[r.index];
        switch (in.op) {
          case Op::AddrOf:
            obj = in.object;
            off = acc + in.imm;
            return true;
          case Op::GetArg: {
            if (!interproc)
                return false;
            ObjectId aObj;
            int64_t aOff;
            if (!argExact(f, static_cast<uint32_t>(in.imm), aObj,
                          aOff))
                return false;
            obj = aObj;
            off = acc + aOff;
            return true;
          }
          case Op::Load: {
            // Loads from an untouched parameter spill slot read the
            // incoming argument.
            if (!interproc || in.imm != 0)
                return false;
            auto it = paramSlots.find(in.object);
            if (it == paramSlots.end() ||
                mod.objects[in.object].owner != f)
                return false;
            ObjectId aObj;
            int64_t aOff;
            if (!argExact(f, it->second, aObj, aOff))
                return false;
            obj = aObj;
            off = acc + aOff;
            return true;
          }
          case Op::Bin: {
            if (in.bin != BinOp::Add && in.bin != BinOp::Sub)
                return false;
            // One side must be a compile-time constant chain.
            int64_t c;
            if (constValue(fn, dm, in.srcB, c)) {
                acc += in.bin == BinOp::Add ? c : -c;
                cur = in.srcA;
            } else if (in.bin == BinOp::Add &&
                       constValue(fn, dm, in.srcA, c)) {
                acc += c;
                cur = in.srcB;
            } else {
                return false;
            }
            break;
          }
          default:
            return false;
        }
    }
    return false;
}

const ObjSet &
PointsTo::argSet(FuncId f, uint32_t idx) const
{
    if (idx >= argSets[f].size())
        panic("PointsTo::argSet: bad arg index %u", idx);
    return argSets[f][idx];
}

} // namespace ipds
