#ifndef IPDS_ANALYSIS_DEFMAP_H
#define IPDS_ANALYSIS_DEFMAP_H

/**
 * @file
 * Def map: vreg -> defining instruction. Because vregs are
 * single-assignment, the map is exact and def-use chains form a DAG,
 * which the affine-chain walker in core/ relies on.
 */

#include <vector>

#include "ir/ir.h"

namespace ipds {

/** Position of an instruction inside its function. */
struct InstRef
{
    BlockId block = kNoBlock;
    uint32_t index = 0;

    bool valid() const { return block != kNoBlock; }
    bool operator==(const InstRef &o) const
    {
        return block == o.block && index == o.index;
    }
};

/**
 * Per-function lookup from vreg to its unique defining instruction.
 */
class DefMap
{
  public:
    explicit DefMap(const Function &fn);

    /** Defining instruction position of @p v; invalid() if undefined. */
    InstRef def(Vreg v) const
    {
        return v < defs.size() ? defs[v] : InstRef{};
    }

    /** The defining instruction itself; panics if undefined. */
    const Inst &defInst(const Function &fn, Vreg v) const;

  private:
    std::vector<InstRef> defs;
};

} // namespace ipds

#endif // IPDS_ANALYSIS_DEFMAP_H
