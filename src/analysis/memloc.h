#ifndef IPDS_ANALYSIS_MEMLOC_H
#define IPDS_ANALYSIS_MEMLOC_H

/**
 * @file
 * Memory locations: the analyzable units of memory-resident state.
 *
 * A location is an (object, offset, size) triple reached by at least one
 * direct Load/Store in the module: whole scalar objects and
 * constant-index array elements. Indirect accesses are summarised at
 * object granularity — an indirect store into an object clobbers every
 * location inside it, and an indirect load infers nothing, which is the
 * paper's conservative rule for multiply-aliased accesses.
 */

#include <cstdint>
#include <map>
#include <vector>

#include "ir/ir.h"

namespace ipds {

/** Id of a memory location. */
using LocId = uint32_t;
constexpr LocId kNoLoc = 0xffffffff;

/** One analyzable memory location. */
struct MemLoc
{
    ObjectId obj = kNoObject;
    uint32_t off = 0;
    uint8_t size = 8;
    /** Printable "name[+off]" form for reports. */
    std::string name;
};

/**
 * Table of all memory locations in a module, plus object -> locations
 * indexing and overlap queries.
 */
class LocTable
{
  public:
    /** Scan @p mod and enumerate all directly accessed locations. */
    explicit LocTable(const Module &mod);

    size_t size() const { return locs.size(); }
    const MemLoc &loc(LocId id) const { return locs[id]; }

    /** Location of a direct access; kNoLoc if never enumerated. */
    LocId find(ObjectId obj, uint32_t off, uint8_t size) const;

    /** Location accessed by a direct Load/Store inst; kNoLoc else. */
    LocId forInst(const Inst &in) const;

    /** All locations inside @p obj. */
    const std::vector<LocId> &objectLocs(ObjectId obj) const;

    /** True if two locations' byte ranges intersect. */
    bool overlap(LocId a, LocId b) const;

    /** Locations of @p obj overlapping [off, off+size). */
    std::vector<LocId> overlapping(ObjectId obj, uint32_t off,
                                   uint32_t size) const;

  private:
    LocId intern(const Module &mod, ObjectId obj, uint32_t off,
                 uint8_t size);

    std::vector<MemLoc> locs;
    std::map<std::tuple<ObjectId, uint32_t, uint8_t>, LocId> index;
    std::vector<std::vector<LocId>> byObject;
    std::vector<LocId> empty;
};

} // namespace ipds

#endif // IPDS_ANALYSIS_MEMLOC_H
