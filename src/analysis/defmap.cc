#include "analysis/defmap.h"

#include "support/diag.h"

namespace ipds {

DefMap::DefMap(const Function &fn)
{
    defs.assign(fn.nextVreg, InstRef{});
    for (const auto &bb : fn.blocks) {
        for (uint32_t i = 0; i < bb.insts.size(); i++) {
            const Inst &in = bb.insts[i];
            if (in.dst != kNoVreg)
                defs[in.dst] = InstRef{bb.id, i};
        }
    }
}

const Inst &
DefMap::defInst(const Function &fn, Vreg v) const
{
    InstRef r = def(v);
    if (!r.valid())
        panic("DefMap: v%u has no definition in %s", v, fn.name.c_str());
    return fn.blocks[r.block].insts[r.index];
}

} // namespace ipds
