#include "analysis/constfold.h"

namespace ipds {

namespace {

bool
evalConst(const Function &fn, const DefMap &dm, Vreg v, int64_t &out,
          int depth)
{
    if (v == kNoVreg || depth > 64)
        return false;
    InstRef r = dm.def(v);
    if (!r.valid())
        return false;
    const Inst &in = fn.blocks[r.block].insts[r.index];
    switch (in.op) {
      case Op::ConstInt:
        out = in.imm;
        return true;
      case Op::Cmp: {
        int64_t a, b;
        if (!evalConst(fn, dm, in.srcA, a, depth + 1) ||
            !evalConst(fn, dm, in.srcB, b, depth + 1)) {
            return false;
        }
        bool r = false;
        switch (in.pred) {
          case Pred::EQ: r = a == b; break;
          case Pred::NE: r = a != b; break;
          case Pred::LT: r = a < b; break;
          case Pred::LE: r = a <= b; break;
          case Pred::GT: r = a > b; break;
          case Pred::GE: r = a >= b; break;
        }
        out = r ? 1 : 0;
        return true;
      }
      case Op::Bin: {
        int64_t a, b;
        if (!evalConst(fn, dm, in.srcA, a, depth + 1) ||
            !evalConst(fn, dm, in.srcB, b, depth + 1)) {
            return false;
        }
        switch (in.bin) {
          case BinOp::Add: out = a + b; return true;
          case BinOp::Sub: out = a - b; return true;
          case BinOp::Mul: out = a * b; return true;
          case BinOp::Div:
            if (b == 0)
                return false;
            out = a / b;
            return true;
          case BinOp::Rem:
            if (b == 0)
                return false;
            out = a % b;
            return true;
          case BinOp::And: out = a & b; return true;
          case BinOp::Or: out = a | b; return true;
          case BinOp::Xor: out = a ^ b; return true;
          case BinOp::Shl:
            if (b < 0 || b > 63)
                return false;
            out = static_cast<int64_t>(
                static_cast<uint64_t>(a) << b);
            return true;
          case BinOp::Shr:
            if (b < 0 || b > 63)
                return false;
            out = a >> b;
            return true;
        }
        return false;
      }
      default:
        return false;
    }
}

} // namespace

bool
constValue(const Function &fn, const DefMap &dm, Vreg v, int64_t &out)
{
    return evalConst(fn, dm, v, out, 0);
}

} // namespace ipds
