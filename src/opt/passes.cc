#include "opt/passes.h"

#include <algorithm>

#include "analysis/constfold.h"
#include "analysis/defmap.h"
#include "support/diag.h"

namespace ipds {

uint32_t
foldConstBranches(Function &fn)
{
    DefMap dm(fn);
    uint32_t folded = 0;
    for (auto &bb : fn.blocks) {
        if (bb.insts.empty())
            continue;
        Inst &t = bb.insts.back();
        if (t.op != Op::Br)
            continue;
        int64_t c;
        if (!constValue(fn, dm, t.srcA, c))
            continue;
        BlockId target = c != 0 ? t.target : t.fallthrough;
        Inst jmp;
        jmp.op = Op::Jmp;
        jmp.target = target;
        jmp.line = t.line;
        t = jmp;
        folded++;
    }
    if (folded)
        fn.computePreds();
    return folded;
}

uint32_t
removeUnreachable(Function &fn)
{
    std::vector<uint8_t> live(fn.blocks.size(), 0);
    std::vector<BlockId> work{0};
    live[0] = 1;
    while (!work.empty()) {
        BlockId b = work.back();
        work.pop_back();
        for (BlockId s : fn.blocks[b].successors()) {
            if (!live[s]) {
                live[s] = 1;
                work.push_back(s);
            }
        }
    }

    uint32_t removed = 0;
    for (const auto &bb : fn.blocks)
        removed += live[bb.id] ? 0 : 1;
    if (removed == 0)
        return 0;

    std::vector<BlockId> remap(fn.blocks.size(), kNoBlock);
    std::vector<BasicBlock> kept;
    for (auto &bb : fn.blocks) {
        if (!live[bb.id])
            continue;
        remap[bb.id] = static_cast<BlockId>(kept.size());
        kept.push_back(std::move(bb));
    }

    for (auto &bb : kept) {
        bb.id = remap[bb.id];
        Inst &t = bb.insts.back();
        if (t.op == Op::Br) {
            t.target = remap[t.target];
            t.fallthrough = remap[t.fallthrough];
        } else if (t.op == Op::Jmp) {
            t.target = remap[t.target];
        }
    }
    fn.blocks = std::move(kept);
    fn.computePreds();
    return removed;
}

namespace {

/**
 * Resolve the final destination of an edge through chains of blocks
 * that contain nothing but a Jmp. Cycles resolve to the entry of the
 * cycle (no retarget), never hang.
 */
BlockId
resolveThrough(const Function &fn, BlockId start)
{
    BlockId cur = start;
    std::vector<uint8_t> seen(fn.blocks.size(), 0);
    while (!seen[cur]) {
        seen[cur] = 1;
        const BasicBlock &bb = fn.blocks[cur];
        if (bb.insts.size() != 1 || bb.insts[0].op != Op::Jmp)
            return cur;
        cur = bb.insts[0].target;
    }
    return cur;
}

} // namespace

uint32_t
threadJumps(Function &fn)
{
    uint32_t changed = 0;

    // 1. Bypass empty forwarding blocks.
    for (auto &bb : fn.blocks) {
        Inst &t = bb.insts.back();
        if (t.op == Op::Br) {
            BlockId nt = resolveThrough(fn, t.target);
            BlockId nf = resolveThrough(fn, t.fallthrough);
            if (nt != t.target || nf != t.fallthrough) {
                t.target = nt;
                t.fallthrough = nf;
                changed++;
            }
        } else if (t.op == Op::Jmp && &bb != &fn.blocks[t.target]) {
            BlockId n = resolveThrough(fn, t.target);
            if (n != t.target) {
                t.target = n;
                changed++;
            }
        }
    }
    fn.computePreds();

    // 2. Merge A -> B when A ends in Jmp B and B's only pred is A.
    for (auto &bb : fn.blocks) {
        while (true) {
            Inst &t = bb.insts.back();
            if (t.op != Op::Jmp)
                break;
            BlockId bId = t.target;
            // Never merge away block 0: it is the function entry
            // regardless of predecessor count.
            if (bId == 0 || bId == bb.id || fn.preds[bId].size() != 1)
                break;
            BasicBlock &succ = fn.blocks[bId];
            if (&succ == &bb)
                break;
            bb.insts.pop_back(); // drop the Jmp
            bb.insts.insert(bb.insts.end(),
                            std::make_move_iterator(succ.insts.begin()),
                            std::make_move_iterator(succ.insts.end()));
            // Leave succ as an unreachable self-loop shell; the
            // unreachable pass deletes it.
            succ.insts.clear();
            Inst self;
            self.op = Op::Jmp;
            self.target = bId;
            succ.insts.push_back(self);
            fn.computePreds();
            changed++;
        }
    }
    return changed;
}

uint32_t
eliminateDeadCode(Function &fn)
{
    uint32_t removedTotal = 0;
    while (true) {
        std::vector<uint32_t> uses(fn.nextVreg, 0);
        for (const auto &bb : fn.blocks) {
            for (const auto &in : bb.insts) {
                if (in.srcA != kNoVreg)
                    uses[in.srcA]++;
                if (in.srcB != kNoVreg)
                    uses[in.srcB]++;
                for (Vreg a : in.args)
                    uses[a]++;
            }
        }
        uint32_t removed = 0;
        for (auto &bb : fn.blocks) {
            auto keep = [&](const Inst &in) {
                if (in.dst == kNoVreg || uses[in.dst] > 0)
                    return true;
                switch (in.op) {
                  case Op::ConstInt:
                  case Op::AddrOf:
                  case Op::Load:
                  case Op::LoadInd:
                  case Op::Cmp:
                  case Op::GetArg:
                    return false;
                  case Op::Bin:
                    // Div/Rem can trap; removing them would change
                    // observable behaviour.
                    return in.bin == BinOp::Div || in.bin == BinOp::Rem;
                  default:
                    return true; // calls, stores, terminators
                }
            };
            size_t before = bb.insts.size();
            bb.insts.erase(
                std::remove_if(bb.insts.begin(), bb.insts.end(),
                               [&](const Inst &in) {
                                   return !keep(in);
                               }),
                bb.insts.end());
            removed += static_cast<uint32_t>(before - bb.insts.size());
        }
        removedTotal += removed;
        if (removed == 0)
            break;
    }
    return removedTotal;
}

uint32_t
forwardStores(Function &fn)
{
    // Map from forwarded load vreg to the stored value vreg.
    std::vector<Vreg> subst(fn.nextVreg, kNoVreg);
    uint32_t forwarded = 0;

    for (auto &bb : fn.blocks) {
        struct LiveStore
        {
            ObjectId obj;
            int64_t off;
            MemSize size;
            Vreg value;
        };
        std::vector<LiveStore> live;

        auto killAll = [&]() { live.clear(); };
        auto killOverlap = [&](ObjectId obj, int64_t off,
                               uint32_t size) {
            live.erase(
                std::remove_if(
                    live.begin(), live.end(),
                    [&](const LiveStore &s) {
                        return s.obj == obj &&
                            s.off < off + size &&
                            off < s.off +
                                static_cast<int64_t>(s.size);
                    }),
                live.end());
        };

        for (auto &in : bb.insts) {
            switch (in.op) {
              case Op::Store:
                killOverlap(in.object, in.imm,
                            static_cast<uint32_t>(in.size));
                live.push_back({in.object, in.imm, in.size, in.srcA});
                break;
              case Op::StoreInd:
                killAll(); // unknown target
                break;
              case Op::Call:
                killAll(); // callee may write anything we track
                break;
              case Op::Load: {
                for (const auto &s : live) {
                    if (s.obj == in.object && s.off == in.imm &&
                        s.size == in.size) {
                        subst[in.dst] = s.value;
                        forwarded++;
                        break;
                    }
                }
                break;
              }
              default:
                break;
            }
        }
    }

    if (forwarded == 0)
        return 0;

    // Resolve chains (a forwarded load feeding another forward).
    auto resolve = [&](Vreg v) {
        int guard = 0;
        while (v != kNoVreg && subst[v] != kNoVreg && guard++ < 64)
            v = subst[v];
        return v;
    };
    for (auto &bb : fn.blocks) {
        for (auto &in : bb.insts) {
            if (in.srcA != kNoVreg && subst[in.srcA] != kNoVreg)
                in.srcA = resolve(in.srcA);
            if (in.srcB != kNoVreg && subst[in.srcB] != kNoVreg)
                in.srcB = resolve(in.srcB);
            for (Vreg &a : in.args)
                if (subst[a] != kNoVreg)
                    a = resolve(a);
        }
    }
    // The loads themselves are now dead; eliminateDeadCode reaps them.
    return forwarded;
}

OptStats
optimizeModule(Module &mod)
{
    OptStats st;
    for (auto &fn : mod.functions) {
        fn.computePreds();
        for (int round = 0; round < 8; round++) {
            uint32_t delta = 0;
            uint32_t v;
            v = forwardStores(fn);
            st.storesForwarded += v;
            delta += v;
            v = foldConstBranches(fn);
            st.branchesFolded += v;
            delta += v;
            v = threadJumps(fn);
            st.jumpsThreaded += v;
            delta += v;
            v = removeUnreachable(fn);
            st.blocksRemoved += v;
            delta += v;
            v = eliminateDeadCode(fn);
            st.instsEliminated += v;
            delta += v;
            if (delta == 0)
                break;
        }
    }
    mod.assignAddresses();
    mod.verify();
    return st;
}

} // namespace ipds
