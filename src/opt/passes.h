#ifndef IPDS_OPT_PASSES_H
#define IPDS_OPT_PASSES_H

/**
 * @file
 * Classic scalar/CFG optimizations over the IR.
 *
 * The paper compiles its benchmarks with SUIF optimizations enabled
 * and remarks that "compiler optimizations can remove some
 * correlations, reducing the detection rate". These passes let the
 * reproduction quantify that observation (bench/abl_opt): optimized
 * code has fewer, tighter memory accesses, which both shrinks the
 * tables and removes correlation opportunities.
 *
 * Passes (applied in this order by optimizeModule):
 *   1. foldConstBranches  — Br on a compile-time constant -> Jmp
 *   2. removeUnreachable  — drop blocks no path reaches
 *   3. threadJumps        — retarget edges through empty Jmp blocks
 *      and merge single-pred/single-succ chains
 *   4. eliminateDeadCode  — remove unused pure value definitions
 *      (including loads; our loads are side-effect free)
 *
 * All passes preserve the verifier invariants; optimizeModule
 * re-assigns instruction addresses and re-verifies.
 */

#include "ir/ir.h"

namespace ipds {

/** Statistics from one optimizeModule run. */
struct OptStats
{
    uint32_t branchesFolded = 0;
    uint32_t blocksRemoved = 0;
    uint32_t jumpsThreaded = 0;
    uint32_t instsEliminated = 0;
    uint32_t storesForwarded = 0;
};

/** Fold constant-condition branches in @p fn. */
uint32_t foldConstBranches(Function &fn);

/** Remove unreachable blocks; compacts ids and fixes targets. */
uint32_t removeUnreachable(Function &fn);

/** Bypass trivial Jmp-only blocks and merge linear chains. */
uint32_t threadJumps(Function &fn);

/** Delete pure instructions whose results are never used. */
uint32_t eliminateDeadCode(Function &fn);

/**
 * Intra-block store-to-load forwarding: a load from a location whose
 * last same-block definition is a still-valid direct store is replaced
 * by the stored register. This is the mem2reg-style transformation the
 * paper's remark is really about: it deletes exactly the memory reads
 * the correlation analysis keys on (the branch then tests a register,
 * which attacks cannot reach — but which the compiler can no longer
 * check either).
 */
uint32_t forwardStores(Function &fn);

/** Run the full pipeline over every function to a fixpoint. */
OptStats optimizeModule(Module &mod);

} // namespace ipds

#endif // IPDS_OPT_PASSES_H
