#ifndef IPDS_VM_DECODE_H
#define IPDS_VM_DECODE_H

/**
 * @file
 * One-time predecode pass for the VM's threaded execution engine.
 *
 * The switch interpreter re-derives everything per instruction: it
 * chases Function -> BasicBlock -> Inst, linearly scans fn.locals to
 * turn an ObjectId into a frame address, and dispatches through nested
 * switches (Op, then BinOp/Pred/Builtin). The predecoder pays those
 * costs once per Module instead:
 *
 *  - blocks are concatenated into one flat DecodedOp array per
 *    function; branch targets become flat op indices, so taking an
 *    edge is a single integer assignment;
 *  - operands are resolved: direct loads/stores carry a folded
 *    frame-slot displacement (local) or absolute address (static);
 *  - sub-switches are flattened into distinct opcodes (one DecOp per
 *    BinOp, per Pred, per access width and address mode), sized for a
 *    computed-goto dispatch table;
 *  - the frame layout (per-local offsets, frame size) is computed per
 *    function, shared with Vm::pushFrame so the two can never drift.
 *
 * Every DecodedOp keeps a pointer to its source Inst: observer events
 * and builtin execution still see the original IR, so predecoding is
 * invisible to everything downstream of the VM.
 *
 * DecodedPrograms are immutable and shared: decodeCached() memoizes
 * per Module (validated by a content fingerprint, so address reuse or
 * in-place mutation re-decodes instead of returning stale ops).
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "ir/ir.h"
#include "vm/memory.h"

namespace ipds {

/**
 * Flattened opcodes. One label each in the threaded dispatch table —
 * keep the order in vm.cc's table exactly in sync.
 */
enum class DecOp : uint8_t
{
    ConstInt,
    AddrLocal,  ///< dst = frameBase + imm
    AddrStatic, ///< dst = imm (absolute)
    LoadLoc8,   ///< dst = mem8[frameBase + imm]
    LoadLoc64,
    LoadSt8,    ///< dst = mem8[imm]
    LoadSt64,
    LoadInd8,   ///< dst = mem8[regs[a]]
    LoadInd64,
    StoreLoc8,  ///< mem8[frameBase + imm] = regs[a]
    StoreLoc64,
    StoreSt8,
    StoreSt64,
    StoreInd8,  ///< mem8[regs[a]] = regs[b]
    StoreInd64,
    Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr,
    CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe,
    Br,          ///< if (regs[dst]) ip = a else ip = b
    Jmp,         ///< ip = a
    CallUser,    ///< callee a, args argPool[b..b+nArgs), result dst
    CallBuiltin, ///< executes via src (args/builtin read from the Inst)
    RetOp,       ///< return regs[a] (a == kNoVreg: void)
    GetArg,      ///< dst = args[imm]
    /**
     * Fused compare-and-branch: a Cmp whose result feeds the
     * IMMEDIATELY following Br in the same block. The op at the next
     * flat index is that Br (kept intact so a fuel/tamper checkpoint
     * can still split the pair); the fused handler consumes it inline,
     * skipping one dispatch per conditional branch. Events, steps and
     * the regs[dst] write are unchanged.
     */
    BrCmpEq, BrCmpNe, BrCmpLt, BrCmpLe, BrCmpGt, BrCmpGe,
    Count_,
};

/** One predecoded instruction (32 bytes). */
struct DecodedOp
{
    DecOp op = DecOp::Jmp;
    uint8_t pad_ = 0;
    uint16_t nArgs = 0; ///< CallUser argument count
    uint32_t dst = 0;   ///< dst vreg; Br: condition vreg
    uint32_t a = 0;     ///< srcA / flat taken target / callee FuncId
    uint32_t b = 0;     ///< srcB / flat fallthrough / argPool offset
    int64_t imm = 0;    ///< ConstInt value / folded displacement
    const Inst *src = nullptr; ///< source IR (events, builtins, pc)
};

/** One function's flat op array plus its frame layout. */
struct DecodedFunc
{
    std::vector<DecodedOp> ops;
    /** Flat index of each BasicBlock's first op. */
    std::vector<uint32_t> blockStart;
    /** CallUser argument vregs, all calls back to back. */
    std::vector<Vreg> argPool;
    /** Frame-relative offset of each local (parallel to fn.locals). */
    std::vector<uint64_t> localOffset;
    /** Total frame bytes (each local rounded up to 8). */
    uint64_t frameSize = 0;
};

/** A whole predecoded Module. Immutable once built. */
struct DecodedProgram
{
    std::vector<DecodedFunc> funcs;
    /** Base address of each Const/Global object (0 for locals). */
    std::vector<uint64_t> staticBase;
    /**
     * Page-aligned initial bytes of the static segments. Every run's
     * Memory attaches this image copy-on-write (Vm::layoutStatics), so
     * constructing a Vm no longer rewrites the static data.
     */
    StaticImage staticImage;
    /** Identity vector the decode was built from (cache validation). */
    std::vector<uint64_t> identity;
};

/** Static data segment layout (deterministic per Module). */
inline constexpr uint64_t kConstSegBase = 0x10000;
inline constexpr uint64_t kGlobalSegBase = 0x100000;

/**
 * Lay out Const/Global objects into their segments. Returns per-object
 * base addresses (0 for locals). Shared by the decoder and
 * Vm::layoutStatics so decoded absolute addresses always match the
 * VM's own placement.
 */
std::vector<uint64_t> computeStaticBases(const Module &mod);

/**
 * Cheap O(blocks) identity fingerprint over everything a cached
 * decode depends on: the addresses and sizes of every container the
 * decode dereferences (notably the inst arrays DecodedOp::src points
 * into) plus a per-block boundary-instruction spot digest. It
 * deliberately does NOT hash full instruction content. decodeCached
 * validates by comparing the underlying identity vector directly;
 * this hash of it is exposed for logging and tests.
 */
uint64_t moduleFingerprint(const Module &mod);

/** Predecode @p mod (addresses must already be assigned). */
std::shared_ptr<const DecodedProgram> decodeModule(const Module &mod);

/**
 * Memoizing wrapper: one decode per live Module. Keyed by address and
 * validated by fingerprint, so a recompiled or mutated module at a
 * reused address decodes afresh. Thread-safe.
 */
std::shared_ptr<const DecodedProgram> decodeCached(const Module &mod);

} // namespace ipds

#endif // IPDS_VM_DECODE_H
