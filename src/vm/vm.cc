#include "vm/vm.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "support/diag.h"

// Dispatch strategy for the threaded engine: computed goto (one
// indirect jump per opcode, so the branch predictor learns per-opcode
// successor patterns) when the build opts in and the compiler supports
// GNU label values; a dense switch over the flattened DecOp space
// otherwise.
#if defined(IPDS_VM_THREADED) && defined(__GNUC__)
#define IPDS_VM_CGOTO 1
#else
#define IPDS_VM_CGOTO 0
#endif

namespace ipds {

namespace {

/** Internal control-flow exception for runtime faults. */
struct TrapError
{
    std::string msg;
};

/** Internal control-flow exception for the exit() builtin. */
struct ExitCall
{
    int64_t code;
};

} // namespace

Vm::Vm(const Module &prog)
    : Vm(prog, decodeCached(prog))
{
}

Vm::Vm(const Module &prog,
       std::shared_ptr<const DecodedProgram> predecoded)
    : mod(prog), dec(std::move(predecoded))
{
    layoutStatics();
    sp = stackTop;
    frames.reserve(8);
}

void
Vm::layoutStatics()
{
    // Placement comes from the shared predecode layout
    // (computeStaticBases) and the initial bytes from its prebuilt
    // page image, attached copy-on-write: constructing a Vm writes no
    // static data at all. `dec` is held by this Vm, so the image
    // outlives `mem`.
    mem.setImage(&dec->staticImage);
}

uint64_t
Vm::globalBase(ObjectId obj) const
{
    if (obj >= dec->staticBase.size() || dec->staticBase[obj] == 0)
        panic("globalBase: object %u is not a static object", obj);
    return dec->staticBase[obj];
}

uint64_t
Vm::entryLocalAddr(const std::string &name) const
{
    const Function &fn = mod.functions[mod.entry];
    const DecodedFunc &df = dec->funcs[mod.entry];
    std::string full = fn.name + "." + name;
    uint64_t base = stackTop - df.frameSize;
    for (size_t i = 0; i < fn.locals.size(); i++) {
        if (mod.objects[fn.locals[i]].name == full)
            return base + df.localOffset[i];
    }
    panic("entryLocalAddr: no local named '%s' in %s", name.c_str(),
          fn.name.c_str());
}

void
Vm::setInputs(std::vector<std::string> lines)
{
    inputs = std::move(lines);
    inputPos = 0;
}

void
Vm::addObserver(ExecObserver *obs)
{
    observers.push_back(obs);
}

void
Vm::setTamper(const TamperSpec &spec)
{
    tamperArmed = true;
    tamperSpec = spec;
}

void
Vm::addTamper(const TamperSpec &spec)
{
    if (spec.atStep == 0 && spec.afterInputEvent == 0)
        fatal("Vm::addTamper: extra tampers need a trigger "
              "(atStep > 0 or afterInputEvent > 0)");
    if (spec.atStep > 0)
        extraTampers.push_back(spec);
    else
        eventTampers.push_back(spec);
}

void
Vm::trap(const std::string &why)
{
    throw TrapError{why};
}

uint64_t
Vm::localAddr(const Frame &fr, ObjectId obj, int64_t off) const
{
    const MemObject &o = mod.objects[obj];
    if (o.kind != ObjectKind::Local)
        return dec->staticBase[obj] + static_cast<uint64_t>(off);
    const Function &fn = mod.functions[fr.func];
    for (size_t i = 0; i < fn.locals.size(); i++) {
        if (fn.locals[i] == obj)
            return fr.localBase[i] + static_cast<uint64_t>(off);
    }
    panic("localAddr: object %s not a local of %s",
          o.name.c_str(), fn.name.c_str());
}

void
Vm::pushFrame(FuncId f, const std::vector<int64_t> &args,
              Vreg caller_dst)
{
    const Function &fn = mod.functions[f];
    const DecodedFunc &df = dec->funcs[f];
    Frame fr;
    fr.func = f;
    fr.regs.assign(fn.nextVreg, 0);
    fr.callerDst = caller_dst;

    // Locals lie bottom-up in declaration order (precomputed by the
    // predecoder): a buffer overflow (increasing addresses) runs into
    // later-declared locals and then the caller's frame, as on a real
    // downward-growing stack.
    if (sp < df.frameSize + stackLimit)
        trap("stack overflow in " + fn.name);
    sp -= df.frameSize;
    fr.frameBase = sp;
    fr.localBase.resize(fn.locals.size());
    for (size_t i = 0; i < fn.locals.size(); i++)
        fr.localBase[i] = fr.frameBase + df.localOffset[i];

    // Bind arguments: GetArg reads regs via a shadow copy.
    fr.args = args;

    frames.push_back(std::move(fr));
    stats_.blocks++; // the callee's entry block
    if (soloObs)
        soloObs->onFunctionEnter(f);
    else
        for (auto *obs : observers)
            obs->onFunctionEnter(f);
}

void
Vm::popFrame()
{
    const Frame &fr = frames.back();
    sp += dec->funcs[fr.func].frameSize;
    FuncId f = fr.func;
    frames.pop_back();
    if (soloObs)
        soloObs->onFunctionExit(f);
    else
        for (auto *obs : observers)
            obs->onFunctionExit(f);
}

RunResult
Vm::run()
{
    RunResult res;
    if (mod.entry == kNoFunc)
        panic("Vm::run: module has no entry point");
    if (trc)
        trc->record(obs::kCatSession, obs::TraceKind::SessionBegin,
                    mod.entry, 0, sessionIndex);
    soloObs = observers.size() == 1 ? observers[0] : nullptr;
    instEventsOn = false;
    for (ExecObserver *obs : observers)
        instEventsOn |= obs->wantsInstEvents();
    std::stable_sort(extraTampers.begin(), extraTampers.end(),
                     [](const TamperSpec &a, const TamperSpec &b) {
                         return a.atStep < b.atStep;
                     });
    extraFired = 0;
    std::stable_sort(eventTampers.begin(), eventTampers.end(),
                     [](const TamperSpec &a, const TamperSpec &b) {
                         return a.afterInputEvent < b.afterInputEvent;
                     });
    eventFired = 0;
    try {
        pushFrame(mod.entry, {}, kNoVreg);
        if (engineKind == VmEngine::Threaded) {
            if (batchedDelivery)
                runThreadedImpl<true>(res);
            else
                runThreadedImpl<false>(res);
        } else {
            while (!frames.empty()) {
                if (!step(res))
                    break;
            }
        }
    } catch (const TrapError &t) {
        res.exit = ExitKind::Trapped;
        res.trapMessage = t.msg;
    } catch (const ExitCall &e) {
        res.exit = ExitKind::Exited;
        res.exitCode = e.code;
    }
    res.steps = steps;
    stats_.instructions = steps;
    res.inputEventCount = inputEvents;
    res.tamper = tamperDone;
    res.faultTampers = std::move(extraRecords);
    extraRecords.clear();
    if (trc)
        trc->record(obs::kCatSession, obs::TraceKind::SessionEnd,
                    mod.entry, 0, sessionIndex,
                    static_cast<uint32_t>(steps));
    return res;
}

bool
Vm::step(RunResult &res)
{
    if (steps >= fuel) {
        // A step-armed tamper at exactly the fuel boundary must fire
        // before the out-of-fuel bail: both engines check fuel at
        // batch granularity, so the two conditions can trip in the
        // same check, and fuel exhaustion must not mask the tamper.
        if (tamperArmed && !tamperDone.fired &&
            tamperSpec.atStep > 0 && steps >= tamperSpec.atStep)
            fireTamper(res);
        fireDueExtraTampers();
        res.exit = ExitKind::OutOfFuel;
        return false;
    }
    steps++;

    Frame &fr = frames.back();
    const Function &fn = mod.functions[fr.func];
    const Inst &in = fn.blocks[fr.block].insts[fr.ip];

    uint64_t memAddr = 0;
    uint32_t memSize = 0;
    bool isLoad = false;

    switch (in.op) {
      case Op::ConstInt:
        fr.regs[in.dst] = in.imm;
        fr.ip++;
        break;
      case Op::AddrOf:
        fr.regs[in.dst] = static_cast<int64_t>(
            localAddr(fr, in.object, in.imm));
        fr.ip++;
        break;
      case Op::Load: {
        memAddr = localAddr(fr, in.object, in.imm);
        memSize = static_cast<uint32_t>(in.size);
        isLoad = true;
        fr.regs[in.dst] = in.size == MemSize::I8
            ? static_cast<int64_t>(mem.readByte(memAddr))
            : mem.readI64(memAddr);
        fr.ip++;
        break;
      }
      case Op::LoadInd: {
        memAddr = static_cast<uint64_t>(fr.regs[in.srcA]);
        memSize = static_cast<uint32_t>(in.size);
        isLoad = true;
        fr.regs[in.dst] = in.size == MemSize::I8
            ? static_cast<int64_t>(mem.readByte(memAddr))
            : mem.readI64(memAddr);
        fr.ip++;
        break;
      }
      case Op::Store: {
        memAddr = localAddr(fr, in.object, in.imm);
        memSize = static_cast<uint32_t>(in.size);
        if (in.size == MemSize::I8)
            mem.writeByte(memAddr,
                          static_cast<uint8_t>(fr.regs[in.srcA]));
        else
            mem.writeI64(memAddr, fr.regs[in.srcA]);
        fr.ip++;
        break;
      }
      case Op::StoreInd: {
        memAddr = static_cast<uint64_t>(fr.regs[in.srcA]);
        memSize = static_cast<uint32_t>(in.size);
        if (in.size == MemSize::I8)
            mem.writeByte(memAddr,
                          static_cast<uint8_t>(fr.regs[in.srcB]));
        else
            mem.writeI64(memAddr, fr.regs[in.srcB]);
        fr.ip++;
        break;
      }
      case Op::Bin: {
        int64_t a = fr.regs[in.srcA];
        int64_t b = fr.regs[in.srcB];
        int64_t out = 0;
        switch (in.bin) {
          case BinOp::Add:
            out = static_cast<int64_t>(static_cast<uint64_t>(a) +
                                       static_cast<uint64_t>(b));
            break;
          case BinOp::Sub:
            out = static_cast<int64_t>(static_cast<uint64_t>(a) -
                                       static_cast<uint64_t>(b));
            break;
          case BinOp::Mul:
            out = static_cast<int64_t>(static_cast<uint64_t>(a) *
                                       static_cast<uint64_t>(b));
            break;
          case BinOp::Div:
            if (b == 0)
                trap("division by zero");
            if (a == INT64_MIN && b == -1)
                out = INT64_MIN;
            else
                out = a / b;
            break;
          case BinOp::Rem:
            if (b == 0)
                trap("remainder by zero");
            if (a == INT64_MIN && b == -1)
                out = 0;
            else
                out = a % b;
            break;
          case BinOp::And: out = a & b; break;
          case BinOp::Or: out = a | b; break;
          case BinOp::Xor: out = a ^ b; break;
          case BinOp::Shl:
            out = static_cast<int64_t>(static_cast<uint64_t>(a)
                                       << (b & 63));
            break;
          case BinOp::Shr:
            out = a >> (b & 63);
            break;
        }
        fr.regs[in.dst] = out;
        fr.ip++;
        break;
      }
      case Op::Cmp: {
        int64_t a = fr.regs[in.srcA];
        int64_t b = fr.regs[in.srcB];
        bool r = false;
        switch (in.pred) {
          case Pred::EQ: r = a == b; break;
          case Pred::NE: r = a != b; break;
          case Pred::LT: r = a < b; break;
          case Pred::LE: r = a <= b; break;
          case Pred::GT: r = a > b; break;
          case Pred::GE: r = a >= b; break;
        }
        fr.regs[in.dst] = r ? 1 : 0;
        fr.ip++;
        break;
      }
      case Op::Br: {
        bool taken = fr.regs[in.srcA] != 0;
        if (recordTrace)
            res.branchTrace.push_back({in.pc, taken});
        if (soloObs)
            soloObs->onBranch(fr.func, in.pc, taken);
        else
            for (auto *obs : observers)
                obs->onBranch(fr.func, in.pc, taken);
        fr.block = taken ? in.target : in.fallthrough;
        fr.ip = 0;
        stats_.blocks++;
        break;
      }
      case Op::Jmp:
        fr.block = in.target;
        fr.ip = 0;
        stats_.blocks++;
        break;
      case Op::Call: {
        if (in.builtin != Builtin::None) {
            execBuiltin(fr, in, res);
            fr.ip++;
        } else {
            std::vector<int64_t> args;
            args.reserve(in.args.size());
            for (Vreg a : in.args)
                args.push_back(fr.regs[a]);
            FuncId callee = in.callee;
            Vreg dst = in.dst;
            fr.ip++; // resume after the call on return
            // NOTE: fr is invalidated by pushFrame.
            pushFrame(callee, args, dst);
        }
        break;
      }
      case Op::Ret: {
        int64_t value =
            in.srcA != kNoVreg ? fr.regs[in.srcA] : 0;
        Vreg dst = fr.callerDst;
        popFrame();
        if (frames.empty()) {
            res.exit = ExitKind::Returned;
            res.exitCode = value;
        } else if (dst != kNoVreg) {
            frames.back().regs[dst] = value;
        }
        break;
      }
      case Op::GetArg: {
        size_t idx = static_cast<size_t>(in.imm);
        fr.regs[in.dst] = idx < frames.back().args.size()
            ? frames.back().args[idx] : 0;
        fr.ip++;
        break;
      }
    }

    if (soloObs)
        soloObs->onInst(in, memAddr, memSize, isLoad);
    else
        for (auto *obs : observers)
            obs->onInst(in, memAddr, memSize, isLoad);

    if (tamperArmed && !tamperDone.fired && tamperSpec.atStep > 0 &&
        steps >= tamperSpec.atStep) {
        fireTamper(res);
    }
    if (extraFired < extraTampers.size() &&
        steps >= extraTampers[extraFired].atStep)
        fireDueExtraTampers();
    return !frames.empty();
}

#if IPDS_VM_CGOTO
#define IPDS_OP(name) L_##name:
#define IPDS_DISPATCH()                                                \
    do {                                                               \
        if (budget == 0)                                               \
            goto checkpoint;                                           \
        budget--;                                                      \
        d = &ops[ip++];                                                \
        goto *kLabels[static_cast<size_t>(d->op)];                     \
    } while (0)
#else
#define IPDS_OP(name) case DecOp::name:
#define IPDS_DISPATCH() goto dispatch
#endif

template <bool Batched>
void
Vm::runThreadedImpl(RunResult &res)
{
    // Every local lives above the first label: the dispatch gotos must
    // not jump over an initialization.
    Frame *fr = &frames.back();
    const DecodedFunc *df = &dec->funcs[fr->func];
    const DecodedOp *ops = df->ops.data();
    int64_t *regs = fr->regs.data();
    uint32_t ip = 0;
    const DecodedOp *d = nullptr;
    // One chunk = the ops until the next fuel/tamper/buffer boundary.
    // A single countdown replaces the per-instruction fuel and tamper
    // checks: chunk ends are scheduled exactly at those boundaries, so
    // checkpoint-granularity checks observe the same step counts as
    // the switch engine's per-instruction ones.
    uint64_t chunkSize = 0;
    uint64_t budget = 0;
    uint64_t blk = 0;
    [[maybe_unused]] VmInstEvent evBuf[kBatchCap];
    [[maybe_unused]] uint32_t nev = 0;
    [[maybe_unused]] FuncId batchFunc = kNoFunc;
    ExecObserver *const solo = soloObs;
    [[maybe_unused]] const bool anyObs = !observers.empty();

    auto flush = [&]() {
        if constexpr (Batched) {
            if (nev == 0)
                return;
            EventBatch b;
            b.func = batchFunc;
            b.ev = evBuf;
            b.n = nev;
            stats_.eventBatchFlushes++;
            if (solo)
                solo->onBatch(b);
            else
                for (auto *obs : observers)
                    obs->onBatch(b);
            nev = 0;
        }
    };
    // Instruction events are skipped wholesale when no observer wants
    // them (detector-only deployment): branches remain the only
    // delivered events, mirroring the paper's hardware interface.
    const bool instEv = instEventsOn;
    auto emitInst = [&](uint64_t mem_addr, uint32_t mem_size,
                        bool is_load) {
        if (!instEv)
            return;
        if constexpr (Batched) {
            VmInstEvent &e = evBuf[nev++];
            e.inst = d->src;
            e.memAddr = mem_addr;
            e.memSize = mem_size;
            e.isLoad = is_load;
            e.isBranch = false;
            e.taken = false;
            if (nev == kBatchCap)
                flush();
        } else if (solo) {
            solo->onInst(*d->src, mem_addr, mem_size, is_load);
        } else {
            for (auto *obs : observers)
                obs->onInst(*d->src, mem_addr, mem_size, is_load);
        }
    };
    // Commits the conditional branch in *d: trace entry, branch event
    // (one buffered event carries both the branch and the inst commit
    // in batched mode; per-event mode fans out onBranch before the
    // inst event, matching the switch engine), then takes the edge.
    // Shared by the Br handler and the fused compare-and-branch ops.
    auto commitBranch = [&](bool taken) {
        if (recordTrace)
            res.branchTrace.push_back({d->src->pc, taken});
        if constexpr (Batched) {
            if (anyObs) {
                VmInstEvent &e = evBuf[nev++];
                e.inst = d->src;
                e.memAddr = 0;
                e.memSize = 0;
                e.isLoad = false;
                e.isBranch = true;
                e.taken = taken;
                batchFunc = fr->func;
                if (nev == kBatchCap)
                    flush();
            }
        } else {
            if (solo)
                solo->onBranch(fr->func, d->src->pc, taken);
            else
                for (auto *obs : observers)
                    obs->onBranch(fr->func, d->src->pc, taken);
            emitInst(0, 0, false);
        }
        ip = taken ? d->a : d->b;
        blk++;
    };

    try {
#if IPDS_VM_CGOTO
        // Must mirror the DecOp declaration order exactly
        // (static_assert below pins the count).
        static const void *const kLabels[] = {
            &&L_ConstInt, &&L_AddrLocal, &&L_AddrStatic,
            &&L_LoadLoc8, &&L_LoadLoc64, &&L_LoadSt8, &&L_LoadSt64,
            &&L_LoadInd8, &&L_LoadInd64,
            &&L_StoreLoc8, &&L_StoreLoc64, &&L_StoreSt8, &&L_StoreSt64,
            &&L_StoreInd8, &&L_StoreInd64,
            &&L_Add, &&L_Sub, &&L_Mul, &&L_Div, &&L_Rem,
            &&L_And, &&L_Or, &&L_Xor, &&L_Shl, &&L_Shr,
            &&L_CmpEq, &&L_CmpNe, &&L_CmpLt, &&L_CmpLe, &&L_CmpGt,
            &&L_CmpGe,
            &&L_Br, &&L_Jmp, &&L_CallUser, &&L_CallBuiltin,
            &&L_RetOp, &&L_GetArg,
            &&L_BrCmpEq, &&L_BrCmpNe, &&L_BrCmpLt, &&L_BrCmpLe,
            &&L_BrCmpGt, &&L_BrCmpGe,
        };
        static_assert(sizeof(kLabels) / sizeof(kLabels[0]) ==
                          static_cast<size_t>(DecOp::Count_),
                      "dispatch table out of sync with DecOp");
        IPDS_DISPATCH();
#else
    dispatch:
        if (budget == 0)
            goto checkpoint;
        budget--;
        d = &ops[ip++];
        switch (d->op) {
#endif

        IPDS_OP(ConstInt) {
            regs[d->dst] = d->imm;
            emitInst(0, 0, false);
            IPDS_DISPATCH();
        }
        IPDS_OP(AddrLocal) {
            regs[d->dst] = static_cast<int64_t>(
                fr->frameBase + static_cast<uint64_t>(d->imm));
            emitInst(0, 0, false);
            IPDS_DISPATCH();
        }
        IPDS_OP(AddrStatic) {
            regs[d->dst] = d->imm;
            emitInst(0, 0, false);
            IPDS_DISPATCH();
        }
        IPDS_OP(LoadLoc8) {
            uint64_t ad =
                fr->frameBase + static_cast<uint64_t>(d->imm);
            regs[d->dst] = static_cast<int64_t>(mem.readByte(ad));
            emitInst(ad, 1, true);
            IPDS_DISPATCH();
        }
        IPDS_OP(LoadLoc64) {
            uint64_t ad =
                fr->frameBase + static_cast<uint64_t>(d->imm);
            regs[d->dst] = mem.readI64(ad);
            emitInst(ad, 8, true);
            IPDS_DISPATCH();
        }
        IPDS_OP(LoadSt8) {
            uint64_t ad = static_cast<uint64_t>(d->imm);
            regs[d->dst] = static_cast<int64_t>(mem.readByte(ad));
            emitInst(ad, 1, true);
            IPDS_DISPATCH();
        }
        IPDS_OP(LoadSt64) {
            uint64_t ad = static_cast<uint64_t>(d->imm);
            regs[d->dst] = mem.readI64(ad);
            emitInst(ad, 8, true);
            IPDS_DISPATCH();
        }
        IPDS_OP(LoadInd8) {
            uint64_t ad = static_cast<uint64_t>(regs[d->a]);
            regs[d->dst] = static_cast<int64_t>(mem.readByte(ad));
            emitInst(ad, 1, true);
            IPDS_DISPATCH();
        }
        IPDS_OP(LoadInd64) {
            uint64_t ad = static_cast<uint64_t>(regs[d->a]);
            regs[d->dst] = mem.readI64(ad);
            emitInst(ad, 8, true);
            IPDS_DISPATCH();
        }
        IPDS_OP(StoreLoc8) {
            uint64_t ad =
                fr->frameBase + static_cast<uint64_t>(d->imm);
            mem.writeByte(ad, static_cast<uint8_t>(regs[d->a]));
            emitInst(ad, 1, false);
            IPDS_DISPATCH();
        }
        IPDS_OP(StoreLoc64) {
            uint64_t ad =
                fr->frameBase + static_cast<uint64_t>(d->imm);
            mem.writeI64(ad, regs[d->a]);
            emitInst(ad, 8, false);
            IPDS_DISPATCH();
        }
        IPDS_OP(StoreSt8) {
            uint64_t ad = static_cast<uint64_t>(d->imm);
            mem.writeByte(ad, static_cast<uint8_t>(regs[d->a]));
            emitInst(ad, 1, false);
            IPDS_DISPATCH();
        }
        IPDS_OP(StoreSt64) {
            uint64_t ad = static_cast<uint64_t>(d->imm);
            mem.writeI64(ad, regs[d->a]);
            emitInst(ad, 8, false);
            IPDS_DISPATCH();
        }
        IPDS_OP(StoreInd8) {
            uint64_t ad = static_cast<uint64_t>(regs[d->a]);
            mem.writeByte(ad, static_cast<uint8_t>(regs[d->b]));
            emitInst(ad, 1, false);
            IPDS_DISPATCH();
        }
        IPDS_OP(StoreInd64) {
            uint64_t ad = static_cast<uint64_t>(regs[d->a]);
            mem.writeI64(ad, regs[d->b]);
            emitInst(ad, 8, false);
            IPDS_DISPATCH();
        }
        IPDS_OP(Add) {
            regs[d->dst] = static_cast<int64_t>(
                static_cast<uint64_t>(regs[d->a]) +
                static_cast<uint64_t>(regs[d->b]));
            emitInst(0, 0, false);
            IPDS_DISPATCH();
        }
        IPDS_OP(Sub) {
            regs[d->dst] = static_cast<int64_t>(
                static_cast<uint64_t>(regs[d->a]) -
                static_cast<uint64_t>(regs[d->b]));
            emitInst(0, 0, false);
            IPDS_DISPATCH();
        }
        IPDS_OP(Mul) {
            regs[d->dst] = static_cast<int64_t>(
                static_cast<uint64_t>(regs[d->a]) *
                static_cast<uint64_t>(regs[d->b]));
            emitInst(0, 0, false);
            IPDS_DISPATCH();
        }
        IPDS_OP(Div) {
            int64_t a = regs[d->a];
            int64_t b = regs[d->b];
            if (b == 0)
                trap("division by zero");
            regs[d->dst] =
                (a == INT64_MIN && b == -1) ? INT64_MIN : a / b;
            emitInst(0, 0, false);
            IPDS_DISPATCH();
        }
        IPDS_OP(Rem) {
            int64_t a = regs[d->a];
            int64_t b = regs[d->b];
            if (b == 0)
                trap("remainder by zero");
            regs[d->dst] = (a == INT64_MIN && b == -1) ? 0 : a % b;
            emitInst(0, 0, false);
            IPDS_DISPATCH();
        }
        IPDS_OP(And) {
            regs[d->dst] = regs[d->a] & regs[d->b];
            emitInst(0, 0, false);
            IPDS_DISPATCH();
        }
        IPDS_OP(Or) {
            regs[d->dst] = regs[d->a] | regs[d->b];
            emitInst(0, 0, false);
            IPDS_DISPATCH();
        }
        IPDS_OP(Xor) {
            regs[d->dst] = regs[d->a] ^ regs[d->b];
            emitInst(0, 0, false);
            IPDS_DISPATCH();
        }
        IPDS_OP(Shl) {
            regs[d->dst] = static_cast<int64_t>(
                static_cast<uint64_t>(regs[d->a])
                << (regs[d->b] & 63));
            emitInst(0, 0, false);
            IPDS_DISPATCH();
        }
        IPDS_OP(Shr) {
            regs[d->dst] = regs[d->a] >> (regs[d->b] & 63);
            emitInst(0, 0, false);
            IPDS_DISPATCH();
        }
        IPDS_OP(CmpEq) {
            regs[d->dst] = regs[d->a] == regs[d->b] ? 1 : 0;
            emitInst(0, 0, false);
            IPDS_DISPATCH();
        }
        IPDS_OP(CmpNe) {
            regs[d->dst] = regs[d->a] != regs[d->b] ? 1 : 0;
            emitInst(0, 0, false);
            IPDS_DISPATCH();
        }
        IPDS_OP(CmpLt) {
            regs[d->dst] = regs[d->a] < regs[d->b] ? 1 : 0;
            emitInst(0, 0, false);
            IPDS_DISPATCH();
        }
        IPDS_OP(CmpLe) {
            regs[d->dst] = regs[d->a] <= regs[d->b] ? 1 : 0;
            emitInst(0, 0, false);
            IPDS_DISPATCH();
        }
        IPDS_OP(CmpGt) {
            regs[d->dst] = regs[d->a] > regs[d->b] ? 1 : 0;
            emitInst(0, 0, false);
            IPDS_DISPATCH();
        }
        IPDS_OP(CmpGe) {
            regs[d->dst] = regs[d->a] >= regs[d->b] ? 1 : 0;
            emitInst(0, 0, false);
            IPDS_DISPATCH();
        }
        IPDS_OP(Br) {
            commitBranch(regs[d->dst] != 0);
            IPDS_DISPATCH();
        }
        IPDS_OP(Jmp) {
            ip = d->a;
            blk++;
            emitInst(0, 0, false);
            IPDS_DISPATCH();
        }
        IPDS_OP(CallUser) {
            // The batch must not span the enter event; the call inst's
            // own event lands in the new batch, matching the
            // per-event order (enter, then the call's onInst).
            flush();
            argScratch.clear();
            for (uint32_t i = 0; i < d->nArgs; i++)
                argScratch.push_back(regs[df->argPool[d->b + i]]);
            fr->ip = ip; // resume after the call on return
            pushFrame(static_cast<FuncId>(d->a), argScratch, d->dst);
            fr = &frames.back();
            df = &dec->funcs[fr->func];
            ops = df->ops.data();
            regs = fr->regs.data();
            ip = 0;
            // d still points into the caller's op array (stable:
            // DecodedProgram is immutable), so the call inst's event
            // can be emitted after the frame switch.
            emitInst(0, 0, false);
            IPDS_DISPATCH();
        }
        IPDS_OP(CallBuiltin) {
            execBuiltin(*fr, *d->src, res);
            emitInst(0, 0, false);
            IPDS_DISPATCH();
        }
        IPDS_OP(RetOp) {
            int64_t value = d->a != kNoVreg ? regs[d->a] : 0;
            Vreg dst = fr->callerDst;
            flush();
            popFrame();
            emitInst(0, 0, false);
            if (frames.empty()) {
                res.exit = ExitKind::Returned;
                res.exitCode = value;
                steps += chunkSize - budget;
                stats_.blocks += blk;
                flush();
                return;
            }
            fr = &frames.back();
            df = &dec->funcs[fr->func];
            ops = df->ops.data();
            regs = fr->regs.data();
            ip = fr->ip;
            if (dst != kNoVreg)
                regs[dst] = value;
            IPDS_DISPATCH();
        }
        IPDS_OP(GetArg) {
            size_t idx = static_cast<size_t>(d->imm);
            regs[d->dst] = idx < fr->args.size() ? fr->args[idx] : 0;
            emitInst(0, 0, false);
            IPDS_DISPATCH();
        }

// Fused compare-and-branch. The cmp half commits first (result still
// written — it may be live past the branch); if the chunk has budget
// left, the paired Br at the next index is consumed inline instead of
// going back through dispatch. At a chunk boundary (budget == 0) the
// pair splits: the checkpoint runs between the two commits and the Br
// then dispatches normally — exactly the interleaving the switch
// engine's per-instruction checks produce.
#define IPDS_OP_BRCMP(name, cmpop)                                     \
        IPDS_OP(BrCmp##name) {                                         \
            const bool cond = regs[d->a] cmpop regs[d->b];             \
            regs[d->dst] = cond ? 1 : 0;                               \
            emitInst(0, 0, false);                                     \
            if (budget != 0) {                                         \
                budget--;                                              \
                d = &ops[ip++];                                        \
                commitBranch(cond);                                    \
            }                                                          \
            IPDS_DISPATCH();                                           \
        }

        IPDS_OP_BRCMP(Eq, ==)
        IPDS_OP_BRCMP(Ne, !=)
        IPDS_OP_BRCMP(Lt, <)
        IPDS_OP_BRCMP(Le, <=)
        IPDS_OP_BRCMP(Gt, >)
        IPDS_OP_BRCMP(Ge, >=)
#undef IPDS_OP_BRCMP

#if !IPDS_VM_CGOTO
          case DecOp::Count_:
            break;
        }
        panic("threaded dispatch: corrupt opcode");
#endif

    checkpoint:
        // Only fuel exhaustion and step-armed tampers land here: the
        // event buffer flushes itself at the append sites when full,
        // so chunks are not capped by remaining batch capacity and a
        // typical run re-enters the checkpoint once or twice total.
        steps += chunkSize - budget;
        stats_.blocks += blk;
        blk = 0;
        // A step-armed tamper at exactly the fuel boundary must fire
        // before the out-of-fuel bail (see the matching check in
        // step()).
        if (tamperArmed && !tamperDone.fired &&
            tamperSpec.atStep > 0 && steps >= tamperSpec.atStep)
            fireTamper(res);
        if (extraFired < extraTampers.size() &&
            steps >= extraTampers[extraFired].atStep)
            fireDueExtraTampers();
        if (steps >= fuel) {
            fr->ip = ip;
            flush();
            res.exit = ExitKind::OutOfFuel;
            return;
        }
        chunkSize = fuel - steps;
        if (tamperArmed && !tamperDone.fired &&
            tamperSpec.atStep > steps)
            chunkSize = std::min(chunkSize, tamperSpec.atStep - steps);
        if (extraFired < extraTampers.size() &&
            extraTampers[extraFired].atStep > steps)
            chunkSize = std::min(
                chunkSize, extraTampers[extraFired].atStep - steps);
        budget = chunkSize;
        IPDS_DISPATCH();
    } catch (...) {
        // Trap/exit unwinding: the faulting op counted a step but is
        // not delivered, exactly like the switch engine.
        steps += chunkSize - budget;
        stats_.blocks += blk;
        flush();
        throw;
    }
}

#undef IPDS_OP
#undef IPDS_DISPATCH

void
Vm::maybeFireTamper(RunResult &res, bool input_event)
{
    if (!tamperArmed || tamperDone.fired || !input_event)
        return;
    if (tamperSpec.atStep > 0)
        return; // step-triggered, handled in step()
    if (inputEvents >= tamperSpec.afterInputEvent)
        fireTamper(res);
}

void
Vm::fireTamper(RunResult &res)
{
    (void)res;
    fireTamperSpec(tamperSpec, tamperDone);
}

void
Vm::fireDueExtraTampers()
{
    while (extraFired < extraTampers.size() &&
           steps >= extraTampers[extraFired].atStep) {
        extraRecords.emplace_back();
        fireTamperSpec(extraTampers[extraFired],
                       extraRecords.back());
        extraFired++;
    }
}

void
Vm::fireDueEventTampers()
{
    while (eventFired < eventTampers.size() &&
           inputEvents >= eventTampers[eventFired].afterInputEvent) {
        extraRecords.emplace_back();
        fireTamperSpec(eventTampers[eventFired],
                       extraRecords.back());
        eventFired++;
    }
}

void
Vm::fireTamperSpec(const TamperSpec &spec, TamperRecord &rec)
{
    rec.fired = true;

    uint64_t addr = spec.addr;
    std::vector<uint8_t> bytes = spec.bytes;

    if (spec.randomStackTarget) {
        Rng rng(spec.seed);
        // Candidate targets: every local object of every live frame.
        struct Cand
        {
            uint64_t addr;
            uint32_t size;
            const MemObject *obj;
        };
        std::vector<Cand> cands;
        for (const auto &fr : frames) {
            const Function &fn = mod.functions[fr.func];
            for (size_t i = 0; i < fn.locals.size(); i++) {
                const MemObject &o = mod.objects[fn.locals[i]];
                cands.push_back({fr.localBase[i], o.size, &o});
            }
        }
        if (cands.empty())
            return;
        const Cand &c = cands[rng.below(cands.size())];
        uint32_t width;
        uint32_t off = 0;
        if (c.obj->isArray) {
            width = static_cast<uint32_t>(
                rng.range(1, std::min<uint32_t>(8, c.size)));
            off = static_cast<uint32_t>(
                rng.below(c.size - width + 1));
        } else {
            width = c.size;
        }
        addr = c.addr + off;
        bytes.resize(width);
        // Attack values: a mix of the semantically interesting (0, 1,
        // small) and raw garbage.
        switch (rng.below(4)) {
          case 0:
            std::fill(bytes.begin(), bytes.end(), 0);
            break;
          case 1:
            std::fill(bytes.begin(), bytes.end(), 0);
            bytes[0] = 1;
            break;
          case 2:
            std::fill(bytes.begin(), bytes.end(), 0);
            bytes[0] = static_cast<uint8_t>(rng.below(64));
            break;
          default:
            for (auto &b : bytes)
                b = static_cast<uint8_t>(rng.below(256));
            break;
        }
        rec.objectName = c.obj->name;
    }

    rec.addr = addr;
    rec.oldBytes = mem.readBytes(addr, bytes.size());
    mem.writeBytes(addr, bytes.data(), bytes.size());
    rec.newBytes = std::move(bytes);
}

void
Vm::execBuiltin(Frame &fr, const Inst &in, RunResult &res)
{
    auto arg = [&](size_t i) { return fr.regs[in.args[i]]; };
    auto uarg = [&](size_t i) {
        return static_cast<uint64_t>(fr.regs[in.args[i]]);
    };
    static const std::string kNoMoreInput;
    auto nextInput = [&]() -> const std::string & {
        const std::string &line =
            inputPos < inputs.size() ? inputs[inputPos++]
                                     : kNoMoreInput;
        inputEvents++;
        res.inputEventPcs.push_back(in.pc);
        if (trc)
            trc->record(obs::kCatSession, obs::TraceKind::InputEvent,
                        fr.func, in.pc, inputEvents);
        return line;
    };

    switch (in.builtin) {
      case Builtin::PrintStr:
        mem.readCStrInto(res.output, uarg(0));
        break;
      case Builtin::PrintInt: {
        char buf[24];
        int len = std::snprintf(buf, sizeof buf, "%lld",
                                static_cast<long long>(arg(0)));
        res.output.append(buf, static_cast<size_t>(len));
        break;
      }
      case Builtin::GetInput: {
        const std::string &line = nextInput();
        // The classic unbounded copy: writes however much arrives.
        mem.writeBytes(uarg(0), line.data(), line.size());
        mem.writeByte(uarg(0) + line.size(), 0);
        maybeFireTamper(res, true);
        fireDueEventTampers();
        break;
      }
      case Builtin::GetInputN: {
        const std::string &line = nextInput();
        int64_t n = arg(1);
        if (n > 0) {
            size_t cap = static_cast<size_t>(n - 1);
            size_t len = std::min(line.size(), cap);
            mem.writeBytes(uarg(0), line.data(), len);
            mem.writeByte(uarg(0) + len, 0);
        }
        maybeFireTamper(res, true);
        fireDueEventTampers();
        break;
      }
      case Builtin::InputInt: {
        const std::string &line = nextInput();
        fr.regs[in.dst] = std::strtoll(line.c_str(), nullptr, 10);
        maybeFireTamper(res, true);
        fireDueEventTampers();
        break;
      }
      case Builtin::Strcpy: {
        // The source is read in full BEFORE any write: an overflow
        // can make the regions overlap, and interleaving would then
        // chase the moving terminator. Short strings (the common
        // case, including typical overflow payloads) stage through a
        // stack buffer instead of a heap std::string.
        uint8_t buf[512];
        const size_t len = mem.cstrLen(uarg(1));
        if (len < sizeof buf) {
            mem.readInto(buf, uarg(1), len);
            buf[len] = 0;
            mem.writeBytes(uarg(0), buf, len + 1);
        } else {
            std::string s = mem.readCStr(uarg(1));
            mem.writeBytes(uarg(0), s.data(), s.size());
            mem.writeByte(uarg(0) + s.size(), 0);
        }
        break;
      }
      case Builtin::Strncpy: {
        std::string s = mem.readCStr(uarg(1));
        int64_t n = arg(2);
        for (int64_t i = 0; i < n; i++) {
            uint8_t b = i < static_cast<int64_t>(s.size())
                ? static_cast<uint8_t>(s[i]) : 0;
            mem.writeByte(uarg(0) + i, b);
        }
        break;
      }
      case Builtin::Strcat: {
        // Same read-everything-first discipline as Strcpy.
        const size_t dlen = mem.cstrLen(uarg(0));
        uint8_t buf[512];
        const size_t slen = mem.cstrLen(uarg(1));
        if (slen < sizeof buf) {
            mem.readInto(buf, uarg(1), slen);
            buf[slen] = 0;
            mem.writeBytes(uarg(0) + dlen, buf, slen + 1);
        } else {
            std::string s = mem.readCStr(uarg(1));
            mem.writeBytes(uarg(0) + dlen, s.data(), s.size());
            mem.writeByte(uarg(0) + dlen + s.size(), 0);
        }
        break;
      }
      case Builtin::Strcmp:
        fr.regs[in.dst] = mem.cstrCmp(uarg(0), uarg(1));
        break;
      case Builtin::Strncmp: {
        int64_t n = arg(2);
        int cmpv = 0;
        for (int64_t i = 0; i < n; i++) {
            uint8_t x = mem.readByte(uarg(0) + i);
            uint8_t y = mem.readByte(uarg(1) + i);
            if (x != y) {
                cmpv = x < y ? -1 : 1;
                break;
            }
            if (x == 0)
                break;
        }
        fr.regs[in.dst] = cmpv;
        break;
      }
      case Builtin::Strlen:
        fr.regs[in.dst] =
            static_cast<int64_t>(mem.cstrLen(uarg(0)));
        break;
      case Builtin::Memset: {
        int64_t n = arg(2);
        if (n > 0)
            mem.fillBytes(uarg(0), static_cast<uint8_t>(arg(1)),
                          static_cast<size_t>(n));
        break;
      }
      case Builtin::Memcpy: {
        int64_t n = arg(2);
        auto data = mem.readBytes(uarg(1), static_cast<size_t>(n));
        mem.writeBytes(uarg(0), data.data(), data.size());
        break;
      }
      case Builtin::Memcmp: {
        int64_t n = arg(2);
        int cmpv = 0;
        for (int64_t i = 0; i < n; i++) {
            uint8_t x = mem.readByte(uarg(0) + i);
            uint8_t y = mem.readByte(uarg(1) + i);
            if (x != y) {
                cmpv = x < y ? -1 : 1;
                break;
            }
        }
        fr.regs[in.dst] = cmpv;
        break;
      }
      case Builtin::Atoi: {
        std::string s = mem.readCStr(uarg(0));
        fr.regs[in.dst] = std::strtoll(s.c_str(), nullptr, 10);
        break;
      }
      case Builtin::Exit:
        throw ExitCall{arg(0)};
      case Builtin::Abort:
        trap("abort() called");
      default:
        panic("execBuiltin: unhandled builtin %d",
              static_cast<int>(in.builtin));
    }
}

} // namespace ipds
