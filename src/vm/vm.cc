#include "vm/vm.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "support/diag.h"

namespace ipds {

namespace {

/** Internal control-flow exception for runtime faults. */
struct TrapError
{
    std::string msg;
};

/** Internal control-flow exception for the exit() builtin. */
struct ExitCall
{
    int64_t code;
};

uint64_t
alignUp(uint64_t v, uint64_t a)
{
    return (v + a - 1) & ~(a - 1);
}

} // namespace

Vm::Vm(const Module &prog)
    : mod(prog)
{
    layoutStatics();
    sp = stackTop;
}

void
Vm::layoutStatics()
{
    staticBase.assign(mod.objects.size(), 0);
    uint64_t constCur = constBase;
    uint64_t globalCur = globalSegBase;
    for (const auto &obj : mod.objects) {
        if (obj.kind == ObjectKind::Local)
            continue;
        uint64_t &cur =
            obj.kind == ObjectKind::Const ? constCur : globalCur;
        staticBase[obj.id] = cur;
        if (!obj.init.empty())
            mem.writeBytes(cur, obj.init.data(), obj.init.size());
        cur = alignUp(cur + obj.size, 8);
    }
}

uint64_t
Vm::globalBase(ObjectId obj) const
{
    if (obj >= staticBase.size() || staticBase[obj] == 0)
        panic("globalBase: object %u is not a static object", obj);
    return staticBase[obj];
}

uint64_t
Vm::entryLocalAddr(const std::string &name) const
{
    const Function &fn = mod.functions[mod.entry];
    std::string full = fn.name + "." + name;
    uint64_t size = 0;
    std::vector<uint64_t> offsets(fn.locals.size());
    for (size_t i = 0; i < fn.locals.size(); i++) {
        offsets[i] = size;
        size += alignUp(mod.objects[fn.locals[i]].size, 8);
    }
    uint64_t base = stackTop - size;
    for (size_t i = 0; i < fn.locals.size(); i++) {
        if (mod.objects[fn.locals[i]].name == full)
            return base + offsets[i];
    }
    panic("entryLocalAddr: no local named '%s' in %s", name.c_str(),
          fn.name.c_str());
}

void
Vm::setInputs(std::vector<std::string> lines)
{
    inputs = std::move(lines);
    inputPos = 0;
}

void
Vm::addObserver(ExecObserver *obs)
{
    observers.push_back(obs);
}

void
Vm::setTamper(const TamperSpec &spec)
{
    tamperArmed = true;
    tamperSpec = spec;
}

void
Vm::trap(const std::string &why)
{
    throw TrapError{why};
}

uint64_t
Vm::localAddr(const Frame &fr, ObjectId obj, int64_t off) const
{
    const MemObject &o = mod.objects[obj];
    if (o.kind != ObjectKind::Local)
        return staticBase[obj] + static_cast<uint64_t>(off);
    const Function &fn = mod.functions[fr.func];
    for (size_t i = 0; i < fn.locals.size(); i++) {
        if (fn.locals[i] == obj)
            return fr.localBase[i] + static_cast<uint64_t>(off);
    }
    panic("localAddr: object %s not a local of %s",
          o.name.c_str(), fn.name.c_str());
}

void
Vm::pushFrame(FuncId f, const std::vector<int64_t> &args,
              Vreg caller_dst)
{
    const Function &fn = mod.functions[f];
    Frame fr;
    fr.func = f;
    fr.regs.assign(fn.nextVreg, 0);
    fr.callerDst = caller_dst;

    // Lay locals out bottom-up in declaration order: a buffer overflow
    // (increasing addresses) runs into later-declared locals and then
    // the caller's frame, as on a real downward-growing stack.
    uint64_t size = 0;
    fr.localBase.resize(fn.locals.size());
    std::vector<uint64_t> offsets(fn.locals.size());
    for (size_t i = 0; i < fn.locals.size(); i++) {
        offsets[i] = size;
        size += alignUp(mod.objects[fn.locals[i]].size, 8);
    }
    if (sp < size + stackLimit)
        trap("stack overflow in " + fn.name);
    sp -= size;
    fr.frameBase = sp;
    for (size_t i = 0; i < fn.locals.size(); i++)
        fr.localBase[i] = fr.frameBase + offsets[i];

    // Bind arguments: GetArg reads regs via a shadow copy.
    fr.args = args;

    frames.push_back(std::move(fr));
    for (auto *obs : observers)
        obs->onFunctionEnter(f);
}

void
Vm::popFrame()
{
    const Frame &fr = frames.back();
    const Function &fn = mod.functions[fr.func];
    uint64_t size = 0;
    for (ObjectId oid : fn.locals)
        size += alignUp(mod.objects[oid].size, 8);
    sp += size;
    FuncId f = fr.func;
    frames.pop_back();
    for (auto *obs : observers)
        obs->onFunctionExit(f);
}

RunResult
Vm::run()
{
    RunResult res;
    if (mod.entry == kNoFunc)
        panic("Vm::run: module has no entry point");
    if (trc)
        trc->record(obs::kCatSession, obs::TraceKind::SessionBegin,
                    mod.entry, 0, sessionIndex);
    try {
        pushFrame(mod.entry, {}, kNoVreg);
        while (!frames.empty()) {
            if (!step(res))
                break;
        }
        if (frames.empty() && res.exit == ExitKind::Returned) {
            // main returned; exitCode already captured in step().
        }
    } catch (const TrapError &t) {
        res.exit = ExitKind::Trapped;
        res.trapMessage = t.msg;
    } catch (const ExitCall &e) {
        res.exit = ExitKind::Exited;
        res.exitCode = e.code;
    }
    res.steps = steps;
    res.inputEventCount = inputEvents;
    res.tamper = tamperDone;
    if (trc)
        trc->record(obs::kCatSession, obs::TraceKind::SessionEnd,
                    mod.entry, 0, sessionIndex,
                    static_cast<uint32_t>(steps));
    return res;
}

bool
Vm::step(RunResult &res)
{
    if (steps >= fuel) {
        res.exit = ExitKind::OutOfFuel;
        return false;
    }
    steps++;

    Frame &fr = frames.back();
    const Function &fn = mod.functions[fr.func];
    const Inst &in = fn.blocks[fr.block].insts[fr.ip];

    uint64_t memAddr = 0;
    uint32_t memSize = 0;
    bool isLoad = false;

    switch (in.op) {
      case Op::ConstInt:
        fr.regs[in.dst] = in.imm;
        fr.ip++;
        break;
      case Op::AddrOf:
        fr.regs[in.dst] = static_cast<int64_t>(
            localAddr(fr, in.object, in.imm));
        fr.ip++;
        break;
      case Op::Load: {
        memAddr = localAddr(fr, in.object, in.imm);
        memSize = static_cast<uint32_t>(in.size);
        isLoad = true;
        fr.regs[in.dst] = in.size == MemSize::I8
            ? static_cast<int64_t>(mem.readByte(memAddr))
            : mem.readI64(memAddr);
        fr.ip++;
        break;
      }
      case Op::LoadInd: {
        memAddr = static_cast<uint64_t>(fr.regs[in.srcA]);
        memSize = static_cast<uint32_t>(in.size);
        isLoad = true;
        fr.regs[in.dst] = in.size == MemSize::I8
            ? static_cast<int64_t>(mem.readByte(memAddr))
            : mem.readI64(memAddr);
        fr.ip++;
        break;
      }
      case Op::Store: {
        memAddr = localAddr(fr, in.object, in.imm);
        memSize = static_cast<uint32_t>(in.size);
        if (in.size == MemSize::I8)
            mem.writeByte(memAddr,
                          static_cast<uint8_t>(fr.regs[in.srcA]));
        else
            mem.writeI64(memAddr, fr.regs[in.srcA]);
        fr.ip++;
        break;
      }
      case Op::StoreInd: {
        memAddr = static_cast<uint64_t>(fr.regs[in.srcA]);
        memSize = static_cast<uint32_t>(in.size);
        if (in.size == MemSize::I8)
            mem.writeByte(memAddr,
                          static_cast<uint8_t>(fr.regs[in.srcB]));
        else
            mem.writeI64(memAddr, fr.regs[in.srcB]);
        fr.ip++;
        break;
      }
      case Op::Bin: {
        int64_t a = fr.regs[in.srcA];
        int64_t b = fr.regs[in.srcB];
        int64_t out = 0;
        switch (in.bin) {
          case BinOp::Add:
            out = static_cast<int64_t>(static_cast<uint64_t>(a) +
                                       static_cast<uint64_t>(b));
            break;
          case BinOp::Sub:
            out = static_cast<int64_t>(static_cast<uint64_t>(a) -
                                       static_cast<uint64_t>(b));
            break;
          case BinOp::Mul:
            out = static_cast<int64_t>(static_cast<uint64_t>(a) *
                                       static_cast<uint64_t>(b));
            break;
          case BinOp::Div:
            if (b == 0)
                trap("division by zero");
            if (a == INT64_MIN && b == -1)
                out = INT64_MIN;
            else
                out = a / b;
            break;
          case BinOp::Rem:
            if (b == 0)
                trap("remainder by zero");
            if (a == INT64_MIN && b == -1)
                out = 0;
            else
                out = a % b;
            break;
          case BinOp::And: out = a & b; break;
          case BinOp::Or: out = a | b; break;
          case BinOp::Xor: out = a ^ b; break;
          case BinOp::Shl:
            out = static_cast<int64_t>(static_cast<uint64_t>(a)
                                       << (b & 63));
            break;
          case BinOp::Shr:
            out = a >> (b & 63);
            break;
        }
        fr.regs[in.dst] = out;
        fr.ip++;
        break;
      }
      case Op::Cmp: {
        int64_t a = fr.regs[in.srcA];
        int64_t b = fr.regs[in.srcB];
        bool r = false;
        switch (in.pred) {
          case Pred::EQ: r = a == b; break;
          case Pred::NE: r = a != b; break;
          case Pred::LT: r = a < b; break;
          case Pred::LE: r = a <= b; break;
          case Pred::GT: r = a > b; break;
          case Pred::GE: r = a >= b; break;
        }
        fr.regs[in.dst] = r ? 1 : 0;
        fr.ip++;
        break;
      }
      case Op::Br: {
        bool taken = fr.regs[in.srcA] != 0;
        if (recordTrace)
            res.branchTrace.push_back({in.pc, taken});
        for (auto *obs : observers)
            obs->onBranch(fr.func, in.pc, taken);
        fr.block = taken ? in.target : in.fallthrough;
        fr.ip = 0;
        break;
      }
      case Op::Jmp:
        fr.block = in.target;
        fr.ip = 0;
        break;
      case Op::Call: {
        if (in.builtin != Builtin::None) {
            execBuiltin(fr, in, res);
            fr.ip++;
        } else {
            std::vector<int64_t> args;
            args.reserve(in.args.size());
            for (Vreg a : in.args)
                args.push_back(fr.regs[a]);
            FuncId callee = in.callee;
            Vreg dst = in.dst;
            fr.ip++; // resume after the call on return
            // NOTE: fr is invalidated by pushFrame.
            pushFrame(callee, args, dst);
        }
        break;
      }
      case Op::Ret: {
        int64_t value =
            in.srcA != kNoVreg ? fr.regs[in.srcA] : 0;
        Vreg dst = fr.callerDst;
        popFrame();
        if (frames.empty()) {
            res.exit = ExitKind::Returned;
            res.exitCode = value;
        } else if (dst != kNoVreg) {
            frames.back().regs[dst] = value;
        }
        break;
      }
      case Op::GetArg: {
        size_t idx = static_cast<size_t>(in.imm);
        fr.regs[in.dst] = idx < frames.back().args.size()
            ? frames.back().args[idx] : 0;
        fr.ip++;
        break;
      }
    }

    for (auto *obs : observers)
        obs->onInst(in, memAddr, memSize, isLoad);

    if (tamperArmed && !tamperDone.fired && tamperSpec.atStep > 0 &&
        steps >= tamperSpec.atStep) {
        fireTamper(res);
    }
    return !frames.empty();
}

void
Vm::maybeFireTamper(RunResult &res, bool input_event)
{
    if (!tamperArmed || tamperDone.fired || !input_event)
        return;
    if (tamperSpec.atStep > 0)
        return; // step-triggered, handled in step()
    if (inputEvents >= tamperSpec.afterInputEvent)
        fireTamper(res);
}

void
Vm::fireTamper(RunResult &res)
{
    (void)res;
    tamperDone.fired = true;

    uint64_t addr = tamperSpec.addr;
    std::vector<uint8_t> bytes = tamperSpec.bytes;

    if (tamperSpec.randomStackTarget) {
        Rng rng(tamperSpec.seed);
        // Candidate targets: every local object of every live frame.
        struct Cand
        {
            uint64_t addr;
            uint32_t size;
            const MemObject *obj;
        };
        std::vector<Cand> cands;
        for (const auto &fr : frames) {
            const Function &fn = mod.functions[fr.func];
            for (size_t i = 0; i < fn.locals.size(); i++) {
                const MemObject &o = mod.objects[fn.locals[i]];
                cands.push_back({fr.localBase[i], o.size, &o});
            }
        }
        if (cands.empty())
            return;
        const Cand &c = cands[rng.below(cands.size())];
        uint32_t width;
        uint32_t off = 0;
        if (c.obj->isArray) {
            width = static_cast<uint32_t>(
                rng.range(1, std::min<uint32_t>(8, c.size)));
            off = static_cast<uint32_t>(
                rng.below(c.size - width + 1));
        } else {
            width = c.size;
        }
        addr = c.addr + off;
        bytes.resize(width);
        // Attack values: a mix of the semantically interesting (0, 1,
        // small) and raw garbage.
        switch (rng.below(4)) {
          case 0:
            std::fill(bytes.begin(), bytes.end(), 0);
            break;
          case 1:
            std::fill(bytes.begin(), bytes.end(), 0);
            bytes[0] = 1;
            break;
          case 2:
            std::fill(bytes.begin(), bytes.end(), 0);
            bytes[0] = static_cast<uint8_t>(rng.below(64));
            break;
          default:
            for (auto &b : bytes)
                b = static_cast<uint8_t>(rng.below(256));
            break;
        }
        tamperDone.objectName = c.obj->name;
    }

    tamperDone.addr = addr;
    tamperDone.oldBytes = mem.readBytes(addr, bytes.size());
    mem.writeBytes(addr, bytes.data(), bytes.size());
    tamperDone.newBytes = std::move(bytes);
}

void
Vm::execBuiltin(Frame &fr, const Inst &in, RunResult &res)
{
    auto arg = [&](size_t i) { return fr.regs[in.args[i]]; };
    auto uarg = [&](size_t i) {
        return static_cast<uint64_t>(fr.regs[in.args[i]]);
    };
    auto nextInput = [&]() -> std::string {
        std::string line =
            inputPos < inputs.size() ? inputs[inputPos++] : "";
        inputEvents++;
        res.inputEventPcs.push_back(in.pc);
        if (trc)
            trc->record(obs::kCatSession, obs::TraceKind::InputEvent,
                        fr.func, in.pc, inputEvents);
        return line;
    };

    switch (in.builtin) {
      case Builtin::PrintStr:
        res.output += mem.readCStr(uarg(0));
        break;
      case Builtin::PrintInt:
        res.output += strprintf("%lld",
                                static_cast<long long>(arg(0)));
        break;
      case Builtin::GetInput: {
        std::string line = nextInput();
        // The classic unbounded copy: writes however much arrives.
        mem.writeBytes(uarg(0), line.data(), line.size());
        mem.writeByte(uarg(0) + line.size(), 0);
        maybeFireTamper(res, true);
        break;
      }
      case Builtin::GetInputN: {
        std::string line = nextInput();
        int64_t n = arg(1);
        if (n > 0) {
            size_t cap = static_cast<size_t>(n - 1);
            size_t len = std::min(line.size(), cap);
            mem.writeBytes(uarg(0), line.data(), len);
            mem.writeByte(uarg(0) + len, 0);
        }
        maybeFireTamper(res, true);
        break;
      }
      case Builtin::InputInt: {
        std::string line = nextInput();
        fr.regs[in.dst] = std::strtoll(line.c_str(), nullptr, 10);
        maybeFireTamper(res, true);
        break;
      }
      case Builtin::Strcpy: {
        std::string s = mem.readCStr(uarg(1));
        mem.writeBytes(uarg(0), s.data(), s.size());
        mem.writeByte(uarg(0) + s.size(), 0);
        break;
      }
      case Builtin::Strncpy: {
        std::string s = mem.readCStr(uarg(1));
        int64_t n = arg(2);
        for (int64_t i = 0; i < n; i++) {
            uint8_t b = i < static_cast<int64_t>(s.size())
                ? static_cast<uint8_t>(s[i]) : 0;
            mem.writeByte(uarg(0) + i, b);
        }
        break;
      }
      case Builtin::Strcat: {
        std::string d = mem.readCStr(uarg(0));
        std::string s = mem.readCStr(uarg(1));
        mem.writeBytes(uarg(0) + d.size(), s.data(), s.size());
        mem.writeByte(uarg(0) + d.size() + s.size(), 0);
        break;
      }
      case Builtin::Strcmp: {
        std::string a = mem.readCStr(uarg(0));
        std::string b = mem.readCStr(uarg(1));
        int c = std::strcmp(a.c_str(), b.c_str());
        fr.regs[in.dst] = c < 0 ? -1 : (c > 0 ? 1 : 0);
        break;
      }
      case Builtin::Strncmp: {
        int64_t n = arg(2);
        int cmpv = 0;
        for (int64_t i = 0; i < n; i++) {
            uint8_t x = mem.readByte(uarg(0) + i);
            uint8_t y = mem.readByte(uarg(1) + i);
            if (x != y) {
                cmpv = x < y ? -1 : 1;
                break;
            }
            if (x == 0)
                break;
        }
        fr.regs[in.dst] = cmpv;
        break;
      }
      case Builtin::Strlen:
        fr.regs[in.dst] =
            static_cast<int64_t>(mem.readCStr(uarg(0)).size());
        break;
      case Builtin::Memset: {
        uint8_t v = static_cast<uint8_t>(arg(1));
        int64_t n = arg(2);
        for (int64_t i = 0; i < n; i++)
            mem.writeByte(uarg(0) + i, v);
        break;
      }
      case Builtin::Memcpy: {
        int64_t n = arg(2);
        auto data = mem.readBytes(uarg(1), static_cast<size_t>(n));
        mem.writeBytes(uarg(0), data.data(), data.size());
        break;
      }
      case Builtin::Memcmp: {
        int64_t n = arg(2);
        int cmpv = 0;
        for (int64_t i = 0; i < n; i++) {
            uint8_t x = mem.readByte(uarg(0) + i);
            uint8_t y = mem.readByte(uarg(1) + i);
            if (x != y) {
                cmpv = x < y ? -1 : 1;
                break;
            }
        }
        fr.regs[in.dst] = cmpv;
        break;
      }
      case Builtin::Atoi: {
        std::string s = mem.readCStr(uarg(0));
        fr.regs[in.dst] = std::strtoll(s.c_str(), nullptr, 10);
        break;
      }
      case Builtin::Exit:
        throw ExitCall{arg(0)};
      case Builtin::Abort:
        trap("abort() called");
      default:
        panic("execBuiltin: unhandled builtin %d",
              static_cast<int>(in.builtin));
    }
}

} // namespace ipds
