#ifndef IPDS_VM_MEMORY_H
#define IPDS_VM_MEMORY_H

/**
 * @file
 * Flat byte-addressed memory for the VM, standing in for the paper's
 * Bochs guest RAM. Sparse pages; reads of unmapped memory return zero.
 * Buffer overflows cross object boundaries exactly as they would in a
 * real address space — that is the attack surface the experiments need.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace ipds {

/** Sparse paged memory. */
class Memory
{
  public:
    /** Read one byte (0 if the page was never written). */
    uint8_t readByte(uint64_t addr) const;

    /** Write one byte, allocating the page if needed. */
    void writeByte(uint64_t addr, uint8_t v);

    /** Little-endian 64-bit read. */
    int64_t readI64(uint64_t addr) const;

    /** Little-endian 64-bit write. */
    void writeI64(uint64_t addr, int64_t v);

    /** Read a NUL-terminated string of at most @p max bytes. */
    std::string readCStr(uint64_t addr, size_t max = 1 << 20) const;

    /** Write @p bytes at @p addr (no terminator added). */
    void writeBytes(uint64_t addr, const void *data, size_t n);

    /** Read @p n raw bytes. */
    std::vector<uint8_t> readBytes(uint64_t addr, size_t n) const;

  private:
    static constexpr uint64_t pageBits = 12;
    static constexpr uint64_t pageSize = 1ULL << pageBits;

    std::unordered_map<uint64_t, std::vector<uint8_t>> pages;
};

} // namespace ipds

#endif // IPDS_VM_MEMORY_H
