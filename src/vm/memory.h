#ifndef IPDS_VM_MEMORY_H
#define IPDS_VM_MEMORY_H

/**
 * @file
 * Flat byte-addressed memory for the VM, standing in for the paper's
 * Bochs guest RAM. Sparse pages; reads of unmapped memory return zero.
 * Buffer overflows cross object boundaries exactly as they would in a
 * real address space — that is the attack surface the experiments need.
 *
 * Accesses are hot-path code for the interpreter: a one-entry page
 * cache in front of the sparse page table makes the common case (the
 * current stack frame's page) a pointer add instead of a hash lookup,
 * and 64-bit accesses that stay inside a page are single memcpys.
 * Pages are never freed and the table is node-based, so the cached
 * page pointer stays valid for the lifetime of the Memory.
 */

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

namespace ipds {

/** One page of read-only backing bytes (Memory::pageSize of them). */
struct ImagePage
{
    uint64_t pageNo = 0;
    std::vector<uint8_t> bytes;
};

/**
 * Page-aligned read-only backing image, sorted by pageNo. Reads of
 * pages absent from the sparse table fall back to these bytes; the
 * first write to an imaged page copies it into the table
 * (copy-on-write). Lets every run share one prebuilt static-data
 * segment instead of rewriting it per Vm construction.
 */
using StaticImage = std::vector<ImagePage>;

/** Sparse paged memory with a one-entry page cache. */
class Memory
{
  public:
    static constexpr uint64_t pageBits = 12;
    static constexpr uint64_t pageSize = 1ULL << pageBits;

    /**
     * Attach a read-only backing image. @p img must outlive the
     * Memory; owned pages created before the attach shadow it.
     */
    void setImage(const StaticImage *img) { image = img; }
    /** Read one byte (0 if the page was never written). */
    uint8_t
    readByte(uint64_t addr) const
    {
        const uint8_t *p = peek(addr);
        return p ? *p : 0;
    }

    /** Write one byte, allocating the page if needed. */
    void
    writeByte(uint64_t addr, uint8_t v)
    {
        *ensure(addr) = v;
    }

    /** Little-endian 64-bit read. */
    int64_t
    readI64(uint64_t addr) const
    {
        if constexpr (std::endian::native == std::endian::little) {
            if ((addr & (pageSize - 1)) <= pageSize - 8) {
                const uint8_t *p = peek(addr);
                if (!p)
                    return 0;
                int64_t v;
                std::memcpy(&v, p, 8);
                return v;
            }
        }
        return readI64Slow(addr);
    }

    /** Little-endian 64-bit write. */
    void
    writeI64(uint64_t addr, int64_t v)
    {
        if constexpr (std::endian::native == std::endian::little) {
            if ((addr & (pageSize - 1)) <= pageSize - 8) {
                std::memcpy(ensure(addr), &v, 8);
                return;
            }
        }
        writeI64Slow(addr, v);
    }

    /** Read a NUL-terminated string of at most @p max bytes. */
    std::string readCStr(uint64_t addr, size_t max = 1 << 20) const;

    /** Length of the C string at @p addr without materializing it. */
    size_t cstrLen(uint64_t addr, size_t max = 1 << 20) const;

    /** Append the C string at @p addr to @p out (no materializing). */
    void readCStrInto(std::string &out, uint64_t addr,
                      size_t max = 1 << 20) const;

    /**
     * strcmp of the C strings at @p a and @p b, result clamped to
     * {-1, 0, 1}. Resolves each page once per chunk, so comparing two
     * strings does not thrash the one-entry page cache byte by byte.
     */
    int cstrCmp(uint64_t a, uint64_t b, size_t max = 1 << 20) const;

    /** Write @p bytes at @p addr (no terminator added). */
    void writeBytes(uint64_t addr, const void *data, size_t n);

    /** memset n bytes starting at @p addr. */
    void fillBytes(uint64_t addr, uint8_t v, size_t n);

    /** Read @p n raw bytes. */
    std::vector<uint8_t> readBytes(uint64_t addr, size_t n) const;

    /** Read @p n raw bytes into caller storage (no allocation). */
    void readInto(void *dst, uint64_t addr, size_t n) const;

  private:
    /**
     * Byte pointer if the page exists (owned or imaged), nullptr
     * otherwise. Two cache entries: the write cache (also readable)
     * and a read-only one, so a read stream over one page does not
     * evict the page the write stream is on — e.g. loads from a
     * global while storing to the stack frame.
     */
    const uint8_t *
    peek(uint64_t addr) const
    {
        if ((addr >> pageBits) == cachedPage)
            return cachedData + (addr & (pageSize - 1));
        if ((addr >> pageBits) == roPage)
            return roData + (addr & (pageSize - 1));
        return peekSlow(addr);
    }

    /** Byte pointer, allocating (zeroed) the page if needed. */
    uint8_t *
    ensure(uint64_t addr)
    {
        if ((addr >> pageBits) == cachedPage)
            return cachedData + (addr & (pageSize - 1));
        return ensureSlow(addr);
    }

    const uint8_t *peekSlow(uint64_t addr) const;
    uint8_t *ensureSlow(uint64_t addr);
    int64_t readI64Slow(uint64_t addr) const;
    void writeI64Slow(uint64_t addr, int64_t v);
    const std::vector<uint8_t> *imageFind(uint64_t pageNo) const;

    std::unordered_map<uint64_t, std::vector<uint8_t>> pages;
    const StaticImage *image = nullptr;
    /** Last page written (readable too); ~0 = nothing cached. */
    mutable uint64_t cachedPage = ~0ULL;
    mutable uint8_t *cachedData = nullptr;
    /** Last page read (may point into the image); ~0 = none. */
    mutable uint64_t roPage = ~0ULL;
    mutable const uint8_t *roData = nullptr;
};

} // namespace ipds

#endif // IPDS_VM_MEMORY_H
