#include "vm/memory.h"

#include <cstring>
#include <string>

namespace ipds {

uint8_t
Memory::readByte(uint64_t addr) const
{
    auto it = pages.find(addr >> pageBits);
    if (it == pages.end())
        return 0;
    return it->second[addr & (pageSize - 1)];
}

void
Memory::writeByte(uint64_t addr, uint8_t v)
{
    auto &page = pages[addr >> pageBits];
    if (page.empty())
        page.resize(pageSize, 0);
    page[addr & (pageSize - 1)] = v;
}

int64_t
Memory::readI64(uint64_t addr) const
{
    uint64_t v = 0;
    for (int i = 0; i < 8; i++)
        v |= static_cast<uint64_t>(readByte(addr + i)) << (8 * i);
    return static_cast<int64_t>(v);
}

void
Memory::writeI64(uint64_t addr, int64_t v)
{
    uint64_t u = static_cast<uint64_t>(v);
    for (int i = 0; i < 8; i++)
        writeByte(addr + i, static_cast<uint8_t>(u >> (8 * i)));
}

std::string
Memory::readCStr(uint64_t addr, size_t max) const
{
    std::string out;
    for (size_t i = 0; i < max; i++) {
        uint8_t b = readByte(addr + i);
        if (b == 0)
            break;
        out.push_back(static_cast<char>(b));
    }
    return out;
}

void
Memory::writeBytes(uint64_t addr, const void *data, size_t n)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < n; i++)
        writeByte(addr + i, p[i]);
}

std::vector<uint8_t>
Memory::readBytes(uint64_t addr, size_t n) const
{
    std::vector<uint8_t> out(n);
    for (size_t i = 0; i < n; i++)
        out[i] = readByte(addr + i);
    return out;
}

} // namespace ipds
