#include "vm/memory.h"

#include <algorithm>
#include <cstring>
#include <string>

namespace ipds {

const std::vector<uint8_t> *
Memory::imageFind(uint64_t pageNo) const
{
    auto it = std::lower_bound(
        image->begin(), image->end(), pageNo,
        [](const ImagePage &p, uint64_t n) { return p.pageNo < n; });
    return (it != image->end() && it->pageNo == pageNo) ? &it->bytes
                                                        : nullptr;
}

const uint8_t *
Memory::peekSlow(uint64_t addr) const
{
    const uint64_t pn = addr >> pageBits;
    auto it = pages.find(pn);
    if (it != pages.end()) {
        // Values in the node-based table and the page buffers
        // themselves are never moved or freed, so the caches can hold
        // raw pointers.
        roPage = pn;
        roData = it->second.data();
        return roData + (addr & (pageSize - 1));
    }
    if (image) {
        if (const std::vector<uint8_t> *img = imageFind(pn)) {
            roPage = pn;
            roData = img->data();
            return roData + (addr & (pageSize - 1));
        }
    }
    return nullptr;
}

uint8_t *
Memory::ensureSlow(uint64_t addr)
{
    const uint64_t pn = addr >> pageBits;
    auto &page = pages[pn];
    if (page.empty()) {
        const std::vector<uint8_t> *img =
            image ? imageFind(pn) : nullptr;
        if (img)
            page = *img; // copy-on-write: first store to an imaged page
        else
            page.resize(pageSize, 0);
        if (roPage == pn)
            roData = page.data(); // the image bytes are now stale
    }
    cachedPage = pn;
    cachedData = page.data();
    return cachedData + (addr & (pageSize - 1));
}

int64_t
Memory::readI64Slow(uint64_t addr) const
{
    uint64_t v = 0;
    for (int i = 0; i < 8; i++)
        v |= static_cast<uint64_t>(readByte(addr + i)) << (8 * i);
    return static_cast<int64_t>(v);
}

void
Memory::writeI64Slow(uint64_t addr, int64_t v)
{
    uint64_t u = static_cast<uint64_t>(v);
    for (int i = 0; i < 8; i++)
        writeByte(addr + i, static_cast<uint8_t>(u >> (8 * i)));
}

// The bulk operations below walk whole in-page runs per iteration
// (memchr / memcpy) instead of going byte-by-byte through the page
// cache: string builtins call them dozens of times per benchmark
// session, and an unmapped page reads as zeros, which for a C string
// is an immediate NUL terminator.

std::string
Memory::readCStr(uint64_t addr, size_t max) const
{
    std::string out;
    readCStrInto(out, addr, max);
    return out;
}

void
Memory::readCStrInto(std::string &out, uint64_t addr, size_t max) const
{
    while (max > 0) {
        const uint8_t *p = peek(addr);
        if (!p)
            break; // unmapped ⇒ zero byte ⇒ terminator
        const size_t chunk = std::min<size_t>(
            pageSize - (addr & (pageSize - 1)), max);
        const void *nul = std::memchr(p, 0, chunk);
        const size_t len =
            nul ? static_cast<size_t>(
                      static_cast<const uint8_t *>(nul) - p)
                : chunk;
        out.append(reinterpret_cast<const char *>(p), len);
        if (nul)
            break;
        addr += chunk;
        max -= chunk;
    }
}

int
Memory::cstrCmp(uint64_t a, uint64_t b, size_t max) const
{
    size_t i = 0;
    while (i < max) {
        const uint8_t *pa = peek(a + i);
        const uint8_t *pb = peek(b + i);
        const size_t chunk = std::min<size_t>(
            std::min<size_t>(pageSize - ((a + i) & (pageSize - 1)),
                             pageSize - ((b + i) & (pageSize - 1))),
            max - i);
        if (!pa && !pb)
            return 0; // both unmapped ⇒ both strings end here
        for (size_t k = 0; k < chunk; k++) {
            const uint8_t x = pa ? pa[k] : 0;
            const uint8_t y = pb ? pb[k] : 0;
            if (x != y)
                return x < y ? -1 : 1;
            if (x == 0)
                return 0;
        }
        i += chunk;
    }
    return 0;
}

size_t
Memory::cstrLen(uint64_t addr, size_t max) const
{
    size_t n = 0;
    while (n < max) {
        const uint8_t *p = peek(addr + n);
        if (!p)
            break;
        const size_t chunk = std::min<size_t>(
            pageSize - ((addr + n) & (pageSize - 1)), max - n);
        const void *nul = std::memchr(p, 0, chunk);
        if (nul) {
            return n + static_cast<size_t>(
                           static_cast<const uint8_t *>(nul) - p);
        }
        n += chunk;
    }
    return n;
}

void
Memory::writeBytes(uint64_t addr, const void *data, size_t n)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    while (n > 0) {
        uint8_t *d = ensure(addr);
        const size_t chunk = std::min<size_t>(
            pageSize - (addr & (pageSize - 1)), n);
        std::memcpy(d, p, chunk);
        addr += chunk;
        p += chunk;
        n -= chunk;
    }
}

void
Memory::fillBytes(uint64_t addr, uint8_t v, size_t n)
{
    while (n > 0) {
        uint8_t *d = ensure(addr);
        const size_t chunk = std::min<size_t>(
            pageSize - (addr & (pageSize - 1)), n);
        std::memset(d, v, chunk);
        addr += chunk;
        n -= chunk;
    }
}

std::vector<uint8_t>
Memory::readBytes(uint64_t addr, size_t n) const
{
    std::vector<uint8_t> out(n); // zero-filled: unmapped reads as 0
    readInto(out.data(), addr, n);
    return out;
}

void
Memory::readInto(void *dst, uint64_t addr, size_t n) const
{
    uint8_t *d = static_cast<uint8_t *>(dst);
    size_t off = 0;
    while (off < n) {
        const uint8_t *p = peek(addr + off);
        const size_t chunk = std::min<size_t>(
            pageSize - ((addr + off) & (pageSize - 1)), n - off);
        if (p)
            std::memcpy(d + off, p, chunk);
        else
            std::memset(d + off, 0, chunk);
        off += chunk;
    }
}

} // namespace ipds
