#ifndef IPDS_VM_VM_H
#define IPDS_VM_VM_H

/**
 * @file
 * Functional executor for compiled programs — the stand-in for the
 * paper's Bochs+Linux testbed (see DESIGN.md substitutions).
 *
 * Responsibilities:
 *  - execute the IR over a flat address space with a real downward-
 *    growing stack, so overflowing a local buffer clobbers neighbouring
 *    locals and caller frames;
 *  - provide the C-library-style builtins (including the classic
 *    unbounded strcpy/get_input overflow vectors);
 *  - feed scripted input lines to the program;
 *  - inject memory tampering at a chosen trigger (Nth input event or
 *    instruction count), optionally picking a random live stack
 *    location — the attack primitive of §6;
 *  - emit events (function enter/exit, committed branches, executed
 *    instructions with effective addresses) to observers: the IPDS
 *    detector and the timing model.
 */

#include <memory>
#include <string>
#include <vector>

#include "ir/ir.h"
#include "obs/trace.h"
#include "support/rng.h"
#include "vm/memory.h"

namespace ipds {

/** How a run ended. */
enum class ExitKind : uint8_t
{
    Returned, ///< main returned
    Exited,   ///< exit() builtin
    Trapped,  ///< runtime fault (division by zero, stack overflow...)
    OutOfFuel,///< instruction budget exhausted (e.g. tampered loop)
};

/** One committed conditional branch. */
struct BranchEvent
{
    uint64_t pc = 0;
    bool taken = false;

    bool operator==(const BranchEvent &o) const
    {
        return pc == o.pc && taken == o.taken;
    }
};

/**
 * Observer interface for execution events. All callbacks default to
 * no-ops so implementations override only what they need.
 */
class ExecObserver
{
  public:
    virtual ~ExecObserver() = default;

    /** A call pushed a frame for @p f. */
    virtual void onFunctionEnter(FuncId f) { (void)f; }

    /** The frame for @p f was popped. */
    virtual void onFunctionExit(FuncId f) { (void)f; }

    /** A conditional branch committed. */
    virtual void
    onBranch(FuncId f, uint64_t pc, bool taken)
    {
        (void)f; (void)pc; (void)taken;
    }

    /**
     * Any instruction committed. @p mem_addr/@p mem_size describe the
     * data access (0 size if none), @p is_load its direction.
     */
    virtual void
    onInst(const Inst &in, uint64_t mem_addr, uint32_t mem_size,
           bool is_load)
    {
        (void)in; (void)mem_addr; (void)mem_size; (void)is_load;
    }
};

/** What to corrupt and when (one attack = one tamper). */
struct TamperSpec
{
    /** Trigger: after this many input events (get_input etc.)... */
    uint32_t afterInputEvent = 0;
    /** ...or, if nonzero, at this absolute instruction count. */
    uint64_t atStep = 0;

    /** If true, pick a random live local stack location. */
    bool randomStackTarget = true;
    uint64_t seed = 1; ///< RNG seed for target/value selection

    /** Explicit target when randomStackTarget is false. */
    uint64_t addr = 0;
    std::vector<uint8_t> bytes;
};

/** Record of what a tamper actually did (for reports and replay). */
struct TamperRecord
{
    bool fired = false;
    uint64_t addr = 0;
    std::string objectName; ///< object hit, if a named local
    std::vector<uint8_t> oldBytes;
    std::vector<uint8_t> newBytes;
};

/** Result of one complete run. */
struct RunResult
{
    ExitKind exit = ExitKind::Returned;
    int64_t exitCode = 0;
    std::string output;
    uint64_t steps = 0;
    uint32_t inputEventCount = 0;
    /** PC of the call that consumed each input event, in order. */
    std::vector<uint64_t> inputEventPcs;
    std::vector<BranchEvent> branchTrace;
    TamperRecord tamper;
    std::string trapMessage;
};

/**
 * The virtual machine. One instance runs one program once.
 */
class Vm
{
  public:
    /** @p prog must outlive the Vm. */
    explicit Vm(const Module &prog);

    /** Provide scripted input lines consumed by the input builtins. */
    void setInputs(std::vector<std::string> lines);

    /** Attach an observer (not owned). May be called multiple times. */
    void addObserver(ExecObserver *obs);

    /** Arm a single memory tamper. */
    void setTamper(const TamperSpec &spec);

    /** Cap on executed instructions (default 50M). */
    void setFuel(uint64_t max_steps) { fuel = max_steps; }

    /** Record the branch trace in the result (default on). */
    void setRecordTrace(bool on) { recordTrace = on; }

    /**
     * Attach a structured-event tracer (obs/trace.h): run begin/end
     * and input events are recorded under kCatSession. The session
     * index tags multi-session streams (Session facade).
     */
    void
    setTracer(obs::Tracer *t, uint64_t session_index = 0)
    {
        trc = t;
        sessionIndex = session_index;
    }

    /** Execute main() to completion. */
    RunResult run();

    /** The VM's memory (exposed for tests and examples). */
    Memory &memory() { return mem; }

    /** Base address of a Global/Const object. */
    uint64_t globalBase(ObjectId obj) const;

    /**
     * Address local @p name of the ENTRY function will occupy at run
     * time (deterministic: main's frame is always placed first).
     * @p name is the bare source name, e.g. "role". Panics if absent.
     */
    uint64_t entryLocalAddr(const std::string &name) const;

  private:
    struct Frame
    {
        FuncId func = kNoFunc;
        BlockId block = 0;
        uint32_t ip = 0; ///< instruction index within block
        std::vector<int64_t> regs;
        std::vector<int64_t> args; ///< incoming argument values
        /** Base address of each local object (parallel to locals). */
        std::vector<uint64_t> localBase;
        uint64_t frameBase = 0; ///< lowest address of the frame
        Vreg callerDst = kNoVreg; ///< caller vreg for the return value
    };

    void layoutStatics();
    void pushFrame(FuncId f, const std::vector<int64_t> &args,
                   Vreg caller_dst);
    void popFrame();
    uint64_t localAddr(const Frame &fr, ObjectId obj,
                       int64_t off) const;

    /** Execute one instruction; returns false when the run ended. */
    bool step(RunResult &res);
    void execBuiltin(Frame &fr, const Inst &in, RunResult &res);

    void maybeFireTamper(RunResult &res, bool input_event);
    void fireTamper(RunResult &res);

    [[noreturn]] void trap(const std::string &why);

    const Module &mod;
    Memory mem;
    std::vector<uint64_t> staticBase; ///< per-object base (globals)
    std::vector<Frame> frames;
    uint64_t sp = 0;

    std::vector<std::string> inputs;
    size_t inputPos = 0;
    uint32_t inputEvents = 0;

    std::vector<ExecObserver *> observers;
    obs::Tracer *trc = nullptr;
    uint64_t sessionIndex = 0;
    bool recordTrace = true;
    uint64_t fuel = 50'000'000;
    uint64_t steps = 0;

    bool tamperArmed = false;
    TamperSpec tamperSpec;
    TamperRecord tamperDone;

    static constexpr uint64_t constBase = 0x10000;
    static constexpr uint64_t globalSegBase = 0x100000;
    static constexpr uint64_t stackTop = 0x7fff0000;
    static constexpr uint64_t stackLimit = 0x7000000;
};

} // namespace ipds

#endif // IPDS_VM_VM_H
