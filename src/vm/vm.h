#ifndef IPDS_VM_VM_H
#define IPDS_VM_VM_H

/**
 * @file
 * Functional executor for compiled programs — the stand-in for the
 * paper's Bochs+Linux testbed (see DESIGN.md substitutions).
 *
 * Responsibilities:
 *  - execute the IR over a flat address space with a real downward-
 *    growing stack, so overflowing a local buffer clobbers neighbouring
 *    locals and caller frames;
 *  - provide the C-library-style builtins (including the classic
 *    unbounded strcpy/get_input overflow vectors);
 *  - feed scripted input lines to the program;
 *  - inject memory tampering at a chosen trigger (Nth input event or
 *    instruction count), optionally picking a random live stack
 *    location — the attack primitive of §6;
 *  - emit events (function enter/exit, committed branches, executed
 *    instructions with effective addresses) to observers: the IPDS
 *    detector and the timing model.
 */

#include <memory>
#include <string>
#include <vector>

#include "ir/ir.h"
#include "obs/trace.h"
#include "support/rng.h"
#include "vm/decode.h"
#include "vm/memory.h"

namespace ipds {

/** How a run ended. */
enum class ExitKind : uint8_t
{
    Returned, ///< main returned
    Exited,   ///< exit() builtin
    Trapped,  ///< runtime fault (division by zero, stack overflow...)
    OutOfFuel,///< instruction budget exhausted (e.g. tampered loop)
};

/** One committed conditional branch. */
struct BranchEvent
{
    uint64_t pc = 0;
    bool taken = false;

    bool operator==(const BranchEvent &o) const
    {
        return pc == o.pc && taken == o.taken;
    }
};

/**
 * One buffered instruction event (batched delivery). Captures exactly
 * what the per-event callbacks carry: the committed instruction, its
 * data access, and — for conditional branches — the direction.
 */
struct VmInstEvent
{
    const Inst *inst = nullptr;
    uint64_t memAddr = 0;
    uint32_t memSize = 0; ///< 0: no data access
    bool isLoad = false;
    bool isBranch = false; ///< Op::Br: onBranch precedes onInst
    bool taken = false;
};

/**
 * A run of buffered events delivered in one observer call.
 *
 * Contract (see DESIGN.md "VM execution engine"):
 *  - events appear in commit order;
 *  - every isBranch event belongs to @p func — a batch never spans a
 *    function enter/exit, which are still delivered per-event and
 *    always flush the pending batch first;
 *  - the call/ret instruction's own event lands in the batch AFTER its
 *    enter/exit, matching the per-event callback order.
 */
struct EventBatch
{
    FuncId func = kNoFunc; ///< function of every branch event
    const VmInstEvent *ev = nullptr;
    uint32_t n = 0;
};

/**
 * Observer interface for execution events. All callbacks default to
 * no-ops so implementations override only what they need.
 */
class ExecObserver
{
  public:
    virtual ~ExecObserver() = default;

    /**
     * Declare whether this observer consumes per-instruction events
     * (onInst / non-branch batch entries). The threaded engine skips
     * instruction-event construction and delivery entirely when no
     * attached observer wants them — the common deployment (detector
     * only) then pays per BRANCH, like the paper's hardware, instead
     * of per instruction. An observer returning false must tolerate
     * batches that carry only branch events. The switch engine is the
     * golden reference and always delivers everything.
     */
    virtual bool wantsInstEvents() const { return true; }

    /** A call pushed a frame for @p f. */
    virtual void onFunctionEnter(FuncId f) { (void)f; }

    /** The frame for @p f was popped. */
    virtual void onFunctionExit(FuncId f) { (void)f; }

    /** A conditional branch committed. */
    virtual void
    onBranch(FuncId f, uint64_t pc, bool taken)
    {
        (void)f; (void)pc; (void)taken;
    }

    /**
     * Any instruction committed. @p mem_addr/@p mem_size describe the
     * data access (0 size if none), @p is_load its direction.
     */
    virtual void
    onInst(const Inst &in, uint64_t mem_addr, uint32_t mem_size,
           bool is_load)
    {
        (void)in; (void)mem_addr; (void)mem_size; (void)is_load;
    }

    /**
     * A batch of buffered events (batched delivery engine). The
     * default replays the per-event callbacks in order, so observers
     * that don't override this see exactly the per-event stream; hot
     * observers override it to pay one virtual call per run of
     * events instead of one per instruction.
     */
    virtual void
    onBatch(const EventBatch &b)
    {
        for (uint32_t i = 0; i < b.n; i++) {
            const VmInstEvent &e = b.ev[i];
            if (e.isBranch)
                onBranch(b.func, e.inst->pc, e.taken);
            onInst(*e.inst, e.memAddr, e.memSize, e.isLoad);
        }
    }
};

/** What to corrupt and when (one attack = one tamper). */
struct TamperSpec
{
    /** Trigger: after this many input events (get_input etc.)... */
    uint32_t afterInputEvent = 0;
    /** ...or, if nonzero, at this absolute instruction count. */
    uint64_t atStep = 0;

    /** If true, pick a random live local stack location. */
    bool randomStackTarget = true;
    uint64_t seed = 1; ///< RNG seed for target/value selection

    /** Explicit target when randomStackTarget is false. */
    uint64_t addr = 0;
    std::vector<uint8_t> bytes;
};

/** Record of what a tamper actually did (for reports and replay). */
struct TamperRecord
{
    bool fired = false;
    uint64_t addr = 0;
    std::string objectName; ///< object hit, if a named local
    std::vector<uint8_t> oldBytes;
    std::vector<uint8_t> newBytes;
};

/** Result of one complete run. */
struct RunResult
{
    ExitKind exit = ExitKind::Returned;
    int64_t exitCode = 0;
    std::string output;
    uint64_t steps = 0;
    uint32_t inputEventCount = 0;
    /** PC of the call that consumed each input event, in order. */
    std::vector<uint64_t> inputEventPcs;
    std::vector<BranchEvent> branchTrace;
    TamperRecord tamper;
    /** One record per fired addTamper() spec, firing order (fault
     *  injection; setTamper's record stays in `tamper`). */
    std::vector<TamperRecord> faultTampers;
    std::string trapMessage;
};

/** Which execution core runs the program. */
enum class VmEngine : uint8_t
{
    Switch,   ///< golden-reference big-switch interpreter
    Threaded, ///< predecoded blocks + threaded dispatch (default)
};

/** Throughput counters of one run (obs/names.h ipds.vm.*). */
struct VmStats
{
    uint64_t instructions = 0;
    uint64_t blocks = 0; ///< basic blocks entered
    uint64_t eventBatchFlushes = 0;
};

/**
 * The virtual machine. One instance runs one program once.
 */
class Vm
{
  public:
    /** @p prog must outlive the Vm. */
    explicit Vm(const Module &prog);

    /**
     * Construct with an explicitly shared predecode (see
     * decodeModule). Session-per-run embedders construct one Vm per
     * run over the same program; passing the handle skips the decode
     * cache's per-construction validation walk. @p predecoded must
     * have been built from @p prog in its current state.
     */
    Vm(const Module &prog,
       std::shared_ptr<const DecodedProgram> predecoded);

    /** Provide scripted input lines consumed by the input builtins. */
    void setInputs(std::vector<std::string> lines);

    /** Attach an observer (not owned). May be called multiple times. */
    void addObserver(ExecObserver *obs);

    /** Arm a single memory tamper. */
    void setTamper(const TamperSpec &spec);

    /**
     * Arm an additional memory tamper (fault injection, attack
     * recipes). Unlike setTamper there may be any number of these;
     * each fires once at its trigger — atStep > 0 fires at that
     * absolute instruction count, otherwise afterInputEvent > 0
     * fires when the Nth input event commits (a spec with neither is
     * a FatalError). Step triggers fire at identical step boundaries
     * in both engines; input-event triggers fire inside the shared
     * builtin path, so multi-write attack sequences stay bit-
     * identical across switch/threaded/batched execution. Fired
     * records land in RunResult::faultTampers in firing order.
     */
    void addTamper(const TamperSpec &spec);

    /** Cap on executed instructions (default 50M). */
    void setFuel(uint64_t max_steps) { fuel = max_steps; }

    /** Record the branch trace in the result (default on). */
    void setRecordTrace(bool on) { recordTrace = on; }

    /** Select the execution core (default Threaded). */
    void setEngine(VmEngine e) { engineKind = e; }
    VmEngine engine() const { return engineKind; }

    /**
     * Threaded engine only: deliver observer events as per-block
     * EventBatches (default) or one virtual call per event. The
     * switch engine always delivers per-event.
     */
    void setBatchedDelivery(bool on) { batchedDelivery = on; }

    /** Throughput counters (valid after run()). */
    const VmStats &vmStats() const { return stats_; }

    /**
     * Attach a structured-event tracer (obs/trace.h): run begin/end
     * and input events are recorded under kCatSession. The session
     * index tags multi-session streams (Session facade).
     */
    void
    setTracer(obs::Tracer *t, uint64_t session_index = 0)
    {
        trc = t;
        sessionIndex = session_index;
    }

    /** Execute main() to completion. */
    RunResult run();

    /** The VM's memory (exposed for tests and examples). */
    Memory &memory() { return mem; }

    /** Base address of a Global/Const object. */
    uint64_t globalBase(ObjectId obj) const;

    /**
     * Address local @p name of the ENTRY function will occupy at run
     * time (deterministic: main's frame is always placed first).
     * @p name is the bare source name, e.g. "role". Panics if absent.
     */
    uint64_t entryLocalAddr(const std::string &name) const;

  private:
    struct Frame
    {
        FuncId func = kNoFunc;
        BlockId block = 0;
        uint32_t ip = 0; ///< instruction index within block
        std::vector<int64_t> regs;
        std::vector<int64_t> args; ///< incoming argument values
        /** Base address of each local object (parallel to locals). */
        std::vector<uint64_t> localBase;
        uint64_t frameBase = 0; ///< lowest address of the frame
        Vreg callerDst = kNoVreg; ///< caller vreg for the return value
    };

    void layoutStatics();
    void pushFrame(FuncId f, const std::vector<int64_t> &args,
                   Vreg caller_dst);
    void popFrame();
    uint64_t localAddr(const Frame &fr, ObjectId obj,
                       int64_t off) const;

    /** Execute one instruction; returns false when the run ended. */
    bool step(RunResult &res);

    /**
     * Predecoded threaded dispatch loop; runs to completion (or out
     * of fuel). Batched selects EventBatch vs per-event delivery.
     */
    template <bool Batched> void runThreadedImpl(RunResult &res);

    void execBuiltin(Frame &fr, const Inst &in, RunResult &res);

    void maybeFireTamper(RunResult &res, bool input_event);
    void fireTamper(RunResult &res);
    /** Corrupt memory per @p spec, recording what happened in @p rec. */
    void fireTamperSpec(const TamperSpec &spec, TamperRecord &rec);
    /** Fire every armed extra tamper whose atStep has been reached. */
    void fireDueExtraTampers();
    /** Fire every armed extra tamper due at the current input event. */
    void fireDueEventTampers();

    [[noreturn]] void trap(const std::string &why);

    const Module &mod;
    std::shared_ptr<const DecodedProgram> dec;
    Memory mem;
    std::vector<Frame> frames;
    uint64_t sp = 0;

    std::vector<std::string> inputs;
    size_t inputPos = 0;
    uint32_t inputEvents = 0;

    std::vector<ExecObserver *> observers;
    /** The single observer when exactly one is attached (fast path). */
    ExecObserver *soloObs = nullptr;
    /** Any attached observer wants per-instruction events. */
    bool instEventsOn = true;
    obs::Tracer *trc = nullptr;
    uint64_t sessionIndex = 0;
    bool recordTrace = true;
    VmEngine engineKind = VmEngine::Threaded;
    bool batchedDelivery = true;
    uint64_t fuel = 50'000'000;
    uint64_t steps = 0;
    VmStats stats_;
    std::vector<int64_t> argScratch; ///< reused CallUser arg buffer

    bool tamperArmed = false;
    TamperSpec tamperSpec;
    TamperRecord tamperDone;
    /** addTamper() specs, sorted by atStep at run() entry. */
    std::vector<TamperSpec> extraTampers;
    size_t extraFired = 0; ///< extraTampers[0..extraFired) have fired
    /** addTamper() input-event specs, sorted by afterInputEvent. */
    std::vector<TamperSpec> eventTampers;
    size_t eventFired = 0; ///< eventTampers[0..eventFired) have fired
    std::vector<TamperRecord> extraRecords;

    /** Events buffered per block before one onBatch flush. */
    static constexpr uint32_t kBatchCap = 64;

    static constexpr uint64_t stackTop = 0x7fff0000;
    static constexpr uint64_t stackLimit = 0x7000000;
};

} // namespace ipds

#endif // IPDS_VM_VM_H
