#include "vm/decode.h"

#include <cstring>
#include <map>
#include <mutex>
#include <unordered_map>

#include "support/diag.h"

namespace ipds {

namespace {

uint64_t
alignUp8(uint64_t v)
{
    return (v + 7) & ~uint64_t(7);
}

/** FNV-1a, 64-bit. */
struct Fnv
{
    uint64_t h = 0xcbf29ce484222325ULL;
    void
    mix(uint64_t v)
    {
        for (int i = 0; i < 8; i++) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    }
};

DecOp
binToDec(BinOp b)
{
    switch (b) {
      case BinOp::Add: return DecOp::Add;
      case BinOp::Sub: return DecOp::Sub;
      case BinOp::Mul: return DecOp::Mul;
      case BinOp::Div: return DecOp::Div;
      case BinOp::Rem: return DecOp::Rem;
      case BinOp::And: return DecOp::And;
      case BinOp::Or: return DecOp::Or;
      case BinOp::Xor: return DecOp::Xor;
      case BinOp::Shl: return DecOp::Shl;
      case BinOp::Shr: return DecOp::Shr;
    }
    panic("binToDec: bad BinOp %d", static_cast<int>(b));
}

DecOp
predToDec(Pred p)
{
    switch (p) {
      case Pred::EQ: return DecOp::CmpEq;
      case Pred::NE: return DecOp::CmpNe;
      case Pred::LT: return DecOp::CmpLt;
      case Pred::LE: return DecOp::CmpLe;
      case Pred::GT: return DecOp::CmpGt;
      case Pred::GE: return DecOp::CmpGe;
    }
    panic("predToDec: bad Pred %d", static_cast<int>(p));
}

DecOp
predToFused(Pred p)
{
    switch (p) {
      case Pred::EQ: return DecOp::BrCmpEq;
      case Pred::NE: return DecOp::BrCmpNe;
      case Pred::LT: return DecOp::BrCmpLt;
      case Pred::LE: return DecOp::BrCmpLe;
      case Pred::GT: return DecOp::BrCmpGt;
      case Pred::GE: return DecOp::BrCmpGe;
    }
    panic("predToFused: bad Pred %d", static_cast<int>(p));
}

/** Frame offset of @p obj within @p df, resolved at decode time. */
uint64_t
localOffsetOf(const Module &mod, const Function &fn,
              const DecodedFunc &df, ObjectId obj)
{
    for (size_t i = 0; i < fn.locals.size(); i++) {
        if (fn.locals[i] == obj)
            return df.localOffset[i];
    }
    panic("decode: object %s is not a local of %s",
          mod.objects[obj].name.c_str(), fn.name.c_str());
}

void
decodeFunction(const Module &mod, const std::vector<uint64_t> &statics,
               const Function &fn, DecodedFunc &df)
{
    // Frame layout, identical to the switch engine's pushFrame:
    // bottom-up in declaration order, each local rounded up to 8.
    df.localOffset.resize(fn.locals.size());
    uint64_t size = 0;
    for (size_t i = 0; i < fn.locals.size(); i++) {
        df.localOffset[i] = size;
        size += alignUp8(mod.objects[fn.locals[i]].size);
    }
    df.frameSize = size;

    df.blockStart.resize(fn.blocks.size());
    uint32_t at = 0;
    for (size_t b = 0; b < fn.blocks.size(); b++) {
        df.blockStart[b] = at;
        at += static_cast<uint32_t>(fn.blocks[b].insts.size());
    }
    df.ops.reserve(at);

    for (const BasicBlock &bb : fn.blocks) {
        for (size_t k = 0; k < bb.insts.size(); k++) {
            const Inst &in = bb.insts[k];
            DecodedOp d;
            d.src = &in;
            const bool isLocal = in.object != kNoObject &&
                mod.objects[in.object].kind == ObjectKind::Local;
            switch (in.op) {
              case Op::ConstInt:
                d.op = DecOp::ConstInt;
                d.dst = in.dst;
                d.imm = in.imm;
                break;
              case Op::AddrOf:
                d.dst = in.dst;
                if (isLocal) {
                    d.op = DecOp::AddrLocal;
                    d.imm = static_cast<int64_t>(
                        localOffsetOf(mod, fn, df, in.object) +
                        static_cast<uint64_t>(in.imm));
                } else {
                    d.op = DecOp::AddrStatic;
                    d.imm = static_cast<int64_t>(
                        statics[in.object] +
                        static_cast<uint64_t>(in.imm));
                }
                break;
              case Op::Load:
                d.dst = in.dst;
                if (isLocal) {
                    d.op = in.size == MemSize::I8 ? DecOp::LoadLoc8
                                                  : DecOp::LoadLoc64;
                    d.imm = static_cast<int64_t>(
                        localOffsetOf(mod, fn, df, in.object) +
                        static_cast<uint64_t>(in.imm));
                } else {
                    d.op = in.size == MemSize::I8 ? DecOp::LoadSt8
                                                  : DecOp::LoadSt64;
                    d.imm = static_cast<int64_t>(
                        statics[in.object] +
                        static_cast<uint64_t>(in.imm));
                }
                break;
              case Op::LoadInd:
                d.op = in.size == MemSize::I8 ? DecOp::LoadInd8
                                              : DecOp::LoadInd64;
                d.dst = in.dst;
                d.a = in.srcA;
                break;
              case Op::Store:
                d.a = in.srcA;
                if (isLocal) {
                    d.op = in.size == MemSize::I8 ? DecOp::StoreLoc8
                                                  : DecOp::StoreLoc64;
                    d.imm = static_cast<int64_t>(
                        localOffsetOf(mod, fn, df, in.object) +
                        static_cast<uint64_t>(in.imm));
                } else {
                    d.op = in.size == MemSize::I8 ? DecOp::StoreSt8
                                                  : DecOp::StoreSt64;
                    d.imm = static_cast<int64_t>(
                        statics[in.object] +
                        static_cast<uint64_t>(in.imm));
                }
                break;
              case Op::StoreInd:
                d.op = in.size == MemSize::I8 ? DecOp::StoreInd8
                                              : DecOp::StoreInd64;
                d.a = in.srcA;
                d.b = in.srcB;
                break;
              case Op::Bin:
                d.op = binToDec(in.bin);
                d.dst = in.dst;
                d.a = in.srcA;
                d.b = in.srcB;
                break;
              case Op::Cmp:
                // The dominant pattern is compare-then-branch on the
                // result; fuse the pair (the Br op stays at the next
                // index — see DecOp::BrCmpEq).
                d.op = (k + 1 < bb.insts.size() &&
                        bb.insts[k + 1].op == Op::Br &&
                        bb.insts[k + 1].srcA == in.dst)
                           ? predToFused(in.pred)
                           : predToDec(in.pred);
                d.dst = in.dst;
                d.a = in.srcA;
                d.b = in.srcB;
                break;
              case Op::Br:
                d.op = DecOp::Br;
                d.dst = in.srcA; // condition vreg
                d.a = df.blockStart[in.target];
                d.b = df.blockStart[in.fallthrough];
                break;
              case Op::Jmp:
                d.op = DecOp::Jmp;
                d.a = df.blockStart[in.target];
                break;
              case Op::Call:
                if (in.builtin != Builtin::None) {
                    d.op = DecOp::CallBuiltin;
                } else {
                    d.op = DecOp::CallUser;
                    d.dst = in.dst;
                    d.a = in.callee;
                    d.b = static_cast<uint32_t>(df.argPool.size());
                    d.nArgs = static_cast<uint16_t>(in.args.size());
                    df.argPool.insert(df.argPool.end(),
                                      in.args.begin(), in.args.end());
                }
                break;
              case Op::Ret:
                d.op = DecOp::RetOp;
                d.a = in.srcA;
                break;
              case Op::GetArg:
                d.op = DecOp::GetArg;
                d.dst = in.dst;
                d.imm = in.imm;
                break;
            }
            df.ops.push_back(d);
        }
    }
}

} // namespace

std::vector<uint64_t>
computeStaticBases(const Module &mod)
{
    std::vector<uint64_t> base(mod.objects.size(), 0);
    uint64_t constCur = kConstSegBase;
    uint64_t globalCur = kGlobalSegBase;
    for (const auto &obj : mod.objects) {
        if (obj.kind == ObjectKind::Local)
            continue;
        uint64_t &cur =
            obj.kind == ObjectKind::Const ? constCur : globalCur;
        base[obj.id] = cur;
        cur = alignUp8(cur + obj.size);
    }
    return base;
}

namespace {

/** One instruction folded into a few words (spot digest). */
void
appendInst(std::vector<uint64_t> &out, const Inst &in)
{
    out.push_back(static_cast<uint64_t>(in.op) |
                  (static_cast<uint64_t>(in.size) << 8) |
                  (static_cast<uint64_t>(in.bin) << 16) |
                  (static_cast<uint64_t>(in.pred) << 24) |
                  (static_cast<uint64_t>(in.builtin) << 32));
    out.push_back((static_cast<uint64_t>(in.dst) << 32) | in.srcA);
    out.push_back(static_cast<uint64_t>(in.imm));
    out.push_back(in.pc);
}

/**
 * Structural identity of a module: everything a cached decode
 * depends on, as a flat word vector cheap to rebuild and compare.
 *
 * Checked on EVERY Vm construction, so this is O(blocks), not
 * O(instructions) — a full content hash here once dominated whole
 * benchmark runs. Identity is what actually protects the cached
 * decode: DecodedOp::src points into each block's inst array, so the
 * vector records the ADDRESSES of every container the decode
 * dereferences (the functions vector, each blocks vector, each inst
 * array) plus their sizes. A recompiled module at a reused address
 * only revives a stale decode if the allocator also reproduced every
 * one of those buffer addresses and block sizes; the first/last-
 * instruction spot digest per block closes that residue. (In-place
 * mutation of a Module after its first run is outside the contract,
 * as for any code cache.)
 */
void
moduleIdentity(const Module &mod, std::vector<uint64_t> &out)
{
    out.clear();
    out.push_back(reinterpret_cast<uint64_t>(mod.functions.data()));
    out.push_back(mod.functions.size());
    out.push_back(reinterpret_cast<uint64_t>(mod.objects.data()));
    out.push_back(mod.objects.size());
    out.push_back(mod.entry);
    for (const Function &fn : mod.functions) {
        out.push_back(reinterpret_cast<uint64_t>(fn.blocks.data()));
        out.push_back(fn.blocks.size());
        out.push_back(fn.locals.size());
        out.push_back(fn.nextVreg);
        for (const BasicBlock &bb : fn.blocks) {
            out.push_back(reinterpret_cast<uint64_t>(bb.insts.data()));
            out.push_back(bb.insts.size());
            if (!bb.insts.empty()) {
                appendInst(out, bb.insts.front());
                appendInst(out, bb.insts.back());
            }
        }
    }
}

/**
 * Lockstep re-walk of moduleIdentity against a stored vector: no
 * allocation, no stores, first mismatch exits. This is the per-Vm-
 * construction hot path of decodeCached; keep the traversal order
 * EXACTLY in sync with moduleIdentity above.
 */
bool
identityMatches(const Module &mod, const std::vector<uint64_t> &id)
{
    size_t n = 0;
    const size_t len = id.size();
    auto eat = [&](uint64_t v) { return n < len && id[n++] == v; };
    auto eatInst = [&](const Inst &in) {
        return eat(static_cast<uint64_t>(in.op) |
                   (static_cast<uint64_t>(in.size) << 8) |
                   (static_cast<uint64_t>(in.bin) << 16) |
                   (static_cast<uint64_t>(in.pred) << 24) |
                   (static_cast<uint64_t>(in.builtin) << 32)) &&
               eat((static_cast<uint64_t>(in.dst) << 32) | in.srcA) &&
               eat(static_cast<uint64_t>(in.imm)) && eat(in.pc);
    };
    if (!eat(reinterpret_cast<uint64_t>(mod.functions.data())) ||
        !eat(mod.functions.size()) ||
        !eat(reinterpret_cast<uint64_t>(mod.objects.data())) ||
        !eat(mod.objects.size()) || !eat(mod.entry))
        return false;
    for (const Function &fn : mod.functions) {
        if (!eat(reinterpret_cast<uint64_t>(fn.blocks.data())) ||
            !eat(fn.blocks.size()) || !eat(fn.locals.size()) ||
            !eat(fn.nextVreg))
            return false;
        for (const BasicBlock &bb : fn.blocks) {
            if (!eat(reinterpret_cast<uint64_t>(bb.insts.data())) ||
                !eat(bb.insts.size()))
                return false;
            if (!bb.insts.empty() &&
                (!eatInst(bb.insts.front()) ||
                 !eatInst(bb.insts.back())))
                return false;
        }
    }
    return n == len;
}

} // namespace

uint64_t
moduleFingerprint(const Module &mod)
{
    std::vector<uint64_t> ident;
    moduleIdentity(mod, ident);
    Fnv f;
    for (uint64_t w : ident)
        f.mix(w);
    return f.h;
}

std::shared_ptr<const DecodedProgram>
decodeModule(const Module &mod)
{
    auto dp = std::make_shared<DecodedProgram>();
    dp->staticBase = computeStaticBases(mod);
    moduleIdentity(mod, dp->identity);
    dp->funcs.resize(mod.functions.size());
    for (size_t i = 0; i < mod.functions.size(); i++)
        decodeFunction(mod, dp->staticBase, mod.functions[i],
                       dp->funcs[i]);

    // Prebuild the static data segments as whole pages; runs attach
    // them copy-on-write instead of rewriting the bytes per Vm.
    std::map<uint64_t, std::vector<uint8_t>> img; // sorted by pageNo
    for (const auto &obj : mod.objects) {
        if (obj.kind == ObjectKind::Local || obj.init.empty())
            continue;
        const uint64_t base = dp->staticBase[obj.id];
        size_t off = 0;
        while (off < obj.init.size()) {
            const uint64_t a = base + off;
            const size_t chunk = std::min<size_t>(
                Memory::pageSize - (a & (Memory::pageSize - 1)),
                obj.init.size() - off);
            auto &pg = img[a >> Memory::pageBits];
            if (pg.empty())
                pg.resize(Memory::pageSize, 0);
            std::memcpy(pg.data() + (a & (Memory::pageSize - 1)),
                        obj.init.data() + off, chunk);
            off += chunk;
        }
    }
    dp->staticImage.reserve(img.size());
    for (auto &kv : img)
        dp->staticImage.push_back({kv.first, std::move(kv.second)});
    return dp;
}

std::shared_ptr<const DecodedProgram>
decodeCached(const Module &mod)
{
    static std::mutex mu;
    static std::unordered_map<const Module *,
                              std::shared_ptr<const DecodedProgram>>
        cache;

    std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find(&mod);
    if (it != cache.end() && identityMatches(mod, it->second->identity))
        return it->second;
    // Bound the map: stale Module addresses accumulate in long-running
    // embedders (each new compile may land anywhere); a rare full drop
    // is cheaper than eviction bookkeeping.
    if (cache.size() >= 64)
        cache.clear();
    auto dp = decodeModule(mod);
    cache[&mod] = dp;
    return dp;
}

} // namespace ipds
