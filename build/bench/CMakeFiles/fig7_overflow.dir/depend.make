# Empty dependencies file for fig7_overflow.
# This may be replaced when dependencies are built.
