file(REMOVE_RECURSE
  "CMakeFiles/fig7_overflow.dir/fig7_overflow.cc.o"
  "CMakeFiles/fig7_overflow.dir/fig7_overflow.cc.o.d"
  "fig7_overflow"
  "fig7_overflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_overflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
