file(REMOVE_RECURSE
  "CMakeFiles/compile_time.dir/compile_time.cc.o"
  "CMakeFiles/compile_time.dir/compile_time.cc.o.d"
  "compile_time"
  "compile_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compile_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
