file(REMOVE_RECURSE
  "CMakeFiles/abl_opt.dir/abl_opt.cc.o"
  "CMakeFiles/abl_opt.dir/abl_opt.cc.o.d"
  "abl_opt"
  "abl_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
