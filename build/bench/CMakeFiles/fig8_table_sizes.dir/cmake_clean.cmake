file(REMOVE_RECURSE
  "CMakeFiles/fig8_table_sizes.dir/fig8_table_sizes.cc.o"
  "CMakeFiles/fig8_table_sizes.dir/fig8_table_sizes.cc.o.d"
  "fig8_table_sizes"
  "fig8_table_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_table_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
