# Empty compiler generated dependencies file for fig8_table_sizes.
# This may be replaced when dependencies are built.
