# Empty dependencies file for baseline_stide.
# This may be replaced when dependencies are built.
