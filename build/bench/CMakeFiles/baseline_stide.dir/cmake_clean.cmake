file(REMOVE_RECURSE
  "CMakeFiles/baseline_stide.dir/baseline_stide.cc.o"
  "CMakeFiles/baseline_stide.dir/baseline_stide.cc.o.d"
  "baseline_stide"
  "baseline_stide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_stide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
