file(REMOVE_RECURSE
  "CMakeFiles/abl_features.dir/abl_features.cc.o"
  "CMakeFiles/abl_features.dir/abl_features.cc.o.d"
  "abl_features"
  "abl_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
