# Empty dependencies file for abl_features.
# This may be replaced when dependencies are built.
