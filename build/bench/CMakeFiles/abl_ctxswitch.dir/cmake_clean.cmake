file(REMOVE_RECURSE
  "CMakeFiles/abl_ctxswitch.dir/abl_ctxswitch.cc.o"
  "CMakeFiles/abl_ctxswitch.dir/abl_ctxswitch.cc.o.d"
  "abl_ctxswitch"
  "abl_ctxswitch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ctxswitch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
