# Empty compiler generated dependencies file for abl_ctxswitch.
# This may be replaced when dependencies are built.
