# Empty compiler generated dependencies file for abl_hash.
# This may be replaced when dependencies are built.
