file(REMOVE_RECURSE
  "CMakeFiles/abl_hash.dir/abl_hash.cc.o"
  "CMakeFiles/abl_hash.dir/abl_hash.cc.o.d"
  "abl_hash"
  "abl_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
