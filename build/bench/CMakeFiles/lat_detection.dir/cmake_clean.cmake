file(REMOVE_RECURSE
  "CMakeFiles/lat_detection.dir/lat_detection.cc.o"
  "CMakeFiles/lat_detection.dir/lat_detection.cc.o.d"
  "lat_detection"
  "lat_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lat_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
