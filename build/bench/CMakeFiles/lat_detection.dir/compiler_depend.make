# Empty compiler generated dependencies file for lat_detection.
# This may be replaced when dependencies are built.
