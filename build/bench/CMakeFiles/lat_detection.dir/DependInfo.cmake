
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/lat_detection.cc" "bench/CMakeFiles/lat_detection.dir/lat_detection.cc.o" "gcc" "bench/CMakeFiles/lat_detection.dir/lat_detection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attack/CMakeFiles/ipds_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ipds_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/ipds_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/ipds_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ipds_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/ipds/CMakeFiles/ipds_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ipds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/ipds_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/ipds_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ipds_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ipds_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ipds_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
