file(REMOVE_RECURSE
  "CMakeFiles/abl_queue.dir/abl_queue.cc.o"
  "CMakeFiles/abl_queue.dir/abl_queue.cc.o.d"
  "abl_queue"
  "abl_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
