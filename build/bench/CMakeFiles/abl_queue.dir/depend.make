# Empty dependencies file for abl_queue.
# This may be replaced when dependencies are built.
