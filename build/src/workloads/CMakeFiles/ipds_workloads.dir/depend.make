# Empty dependencies file for ipds_workloads.
# This may be replaced when dependencies are built.
