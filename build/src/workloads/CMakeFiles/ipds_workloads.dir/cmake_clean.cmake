file(REMOVE_RECURSE
  "CMakeFiles/ipds_workloads.dir/workloads.cc.o"
  "CMakeFiles/ipds_workloads.dir/workloads.cc.o.d"
  "libipds_workloads.a"
  "libipds_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipds_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
