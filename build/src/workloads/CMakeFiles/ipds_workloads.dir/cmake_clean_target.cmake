file(REMOVE_RECURSE
  "libipds_workloads.a"
)
