file(REMOVE_RECURSE
  "CMakeFiles/ipds_timing.dir/branchpred.cc.o"
  "CMakeFiles/ipds_timing.dir/branchpred.cc.o.d"
  "CMakeFiles/ipds_timing.dir/cache.cc.o"
  "CMakeFiles/ipds_timing.dir/cache.cc.o.d"
  "CMakeFiles/ipds_timing.dir/cpu.cc.o"
  "CMakeFiles/ipds_timing.dir/cpu.cc.o.d"
  "CMakeFiles/ipds_timing.dir/engine.cc.o"
  "CMakeFiles/ipds_timing.dir/engine.cc.o.d"
  "libipds_timing.a"
  "libipds_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipds_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
