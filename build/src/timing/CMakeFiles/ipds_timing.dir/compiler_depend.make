# Empty compiler generated dependencies file for ipds_timing.
# This may be replaced when dependencies are built.
