file(REMOVE_RECURSE
  "libipds_timing.a"
)
