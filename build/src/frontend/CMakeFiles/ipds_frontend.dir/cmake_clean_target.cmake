file(REMOVE_RECURSE
  "libipds_frontend.a"
)
