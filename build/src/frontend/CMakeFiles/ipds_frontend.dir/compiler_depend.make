# Empty compiler generated dependencies file for ipds_frontend.
# This may be replaced when dependencies are built.
