file(REMOVE_RECURSE
  "CMakeFiles/ipds_frontend.dir/codegen.cc.o"
  "CMakeFiles/ipds_frontend.dir/codegen.cc.o.d"
  "CMakeFiles/ipds_frontend.dir/lexer.cc.o"
  "CMakeFiles/ipds_frontend.dir/lexer.cc.o.d"
  "CMakeFiles/ipds_frontend.dir/parser.cc.o"
  "CMakeFiles/ipds_frontend.dir/parser.cc.o.d"
  "libipds_frontend.a"
  "libipds_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipds_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
