file(REMOVE_RECURSE
  "libipds_ir.a"
)
