file(REMOVE_RECURSE
  "CMakeFiles/ipds_ir.dir/builder.cc.o"
  "CMakeFiles/ipds_ir.dir/builder.cc.o.d"
  "CMakeFiles/ipds_ir.dir/builtins.cc.o"
  "CMakeFiles/ipds_ir.dir/builtins.cc.o.d"
  "CMakeFiles/ipds_ir.dir/ir.cc.o"
  "CMakeFiles/ipds_ir.dir/ir.cc.o.d"
  "CMakeFiles/ipds_ir.dir/printer.cc.o"
  "CMakeFiles/ipds_ir.dir/printer.cc.o.d"
  "CMakeFiles/ipds_ir.dir/verifier.cc.o"
  "CMakeFiles/ipds_ir.dir/verifier.cc.o.d"
  "libipds_ir.a"
  "libipds_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipds_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
