# Empty compiler generated dependencies file for ipds_ir.
# This may be replaced when dependencies are built.
