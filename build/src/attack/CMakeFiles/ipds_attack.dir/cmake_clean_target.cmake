file(REMOVE_RECURSE
  "libipds_attack.a"
)
