file(REMOVE_RECURSE
  "CMakeFiles/ipds_attack.dir/campaign.cc.o"
  "CMakeFiles/ipds_attack.dir/campaign.cc.o.d"
  "CMakeFiles/ipds_attack.dir/overflow.cc.o"
  "CMakeFiles/ipds_attack.dir/overflow.cc.o.d"
  "libipds_attack.a"
  "libipds_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipds_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
