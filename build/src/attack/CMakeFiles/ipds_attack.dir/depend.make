# Empty dependencies file for ipds_attack.
# This may be replaced when dependencies are built.
