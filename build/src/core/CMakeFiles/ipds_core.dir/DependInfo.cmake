
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/affine.cc" "src/core/CMakeFiles/ipds_core.dir/affine.cc.o" "gcc" "src/core/CMakeFiles/ipds_core.dir/affine.cc.o.d"
  "/root/repo/src/core/batbuild.cc" "src/core/CMakeFiles/ipds_core.dir/batbuild.cc.o" "gcc" "src/core/CMakeFiles/ipds_core.dir/batbuild.cc.o.d"
  "/root/repo/src/core/correlation.cc" "src/core/CMakeFiles/ipds_core.dir/correlation.cc.o" "gcc" "src/core/CMakeFiles/ipds_core.dir/correlation.cc.o.d"
  "/root/repo/src/core/hashfn.cc" "src/core/CMakeFiles/ipds_core.dir/hashfn.cc.o" "gcc" "src/core/CMakeFiles/ipds_core.dir/hashfn.cc.o.d"
  "/root/repo/src/core/image.cc" "src/core/CMakeFiles/ipds_core.dir/image.cc.o" "gcc" "src/core/CMakeFiles/ipds_core.dir/image.cc.o.d"
  "/root/repo/src/core/interval.cc" "src/core/CMakeFiles/ipds_core.dir/interval.cc.o" "gcc" "src/core/CMakeFiles/ipds_core.dir/interval.cc.o.d"
  "/root/repo/src/core/program.cc" "src/core/CMakeFiles/ipds_core.dir/program.cc.o" "gcc" "src/core/CMakeFiles/ipds_core.dir/program.cc.o.d"
  "/root/repo/src/core/tables.cc" "src/core/CMakeFiles/ipds_core.dir/tables.cc.o" "gcc" "src/core/CMakeFiles/ipds_core.dir/tables.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/ipds_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/ipds_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ipds_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ipds_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
