file(REMOVE_RECURSE
  "CMakeFiles/ipds_core.dir/affine.cc.o"
  "CMakeFiles/ipds_core.dir/affine.cc.o.d"
  "CMakeFiles/ipds_core.dir/batbuild.cc.o"
  "CMakeFiles/ipds_core.dir/batbuild.cc.o.d"
  "CMakeFiles/ipds_core.dir/correlation.cc.o"
  "CMakeFiles/ipds_core.dir/correlation.cc.o.d"
  "CMakeFiles/ipds_core.dir/hashfn.cc.o"
  "CMakeFiles/ipds_core.dir/hashfn.cc.o.d"
  "CMakeFiles/ipds_core.dir/image.cc.o"
  "CMakeFiles/ipds_core.dir/image.cc.o.d"
  "CMakeFiles/ipds_core.dir/interval.cc.o"
  "CMakeFiles/ipds_core.dir/interval.cc.o.d"
  "CMakeFiles/ipds_core.dir/program.cc.o"
  "CMakeFiles/ipds_core.dir/program.cc.o.d"
  "CMakeFiles/ipds_core.dir/tables.cc.o"
  "CMakeFiles/ipds_core.dir/tables.cc.o.d"
  "libipds_core.a"
  "libipds_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipds_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
