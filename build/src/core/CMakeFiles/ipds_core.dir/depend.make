# Empty dependencies file for ipds_core.
# This may be replaced when dependencies are built.
