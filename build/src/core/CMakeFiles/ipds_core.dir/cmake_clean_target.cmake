file(REMOVE_RECURSE
  "libipds_core.a"
)
