file(REMOVE_RECURSE
  "libipds_runtime.a"
)
