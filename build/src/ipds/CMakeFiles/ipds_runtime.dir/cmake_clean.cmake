file(REMOVE_RECURSE
  "CMakeFiles/ipds_runtime.dir/detector.cc.o"
  "CMakeFiles/ipds_runtime.dir/detector.cc.o.d"
  "libipds_runtime.a"
  "libipds_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipds_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
