# Empty dependencies file for ipds_runtime.
# This may be replaced when dependencies are built.
