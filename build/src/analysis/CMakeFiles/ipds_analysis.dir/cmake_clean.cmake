file(REMOVE_RECURSE
  "CMakeFiles/ipds_analysis.dir/constfold.cc.o"
  "CMakeFiles/ipds_analysis.dir/constfold.cc.o.d"
  "CMakeFiles/ipds_analysis.dir/defmap.cc.o"
  "CMakeFiles/ipds_analysis.dir/defmap.cc.o.d"
  "CMakeFiles/ipds_analysis.dir/dominators.cc.o"
  "CMakeFiles/ipds_analysis.dir/dominators.cc.o.d"
  "CMakeFiles/ipds_analysis.dir/effects.cc.o"
  "CMakeFiles/ipds_analysis.dir/effects.cc.o.d"
  "CMakeFiles/ipds_analysis.dir/memconst.cc.o"
  "CMakeFiles/ipds_analysis.dir/memconst.cc.o.d"
  "CMakeFiles/ipds_analysis.dir/memloc.cc.o"
  "CMakeFiles/ipds_analysis.dir/memloc.cc.o.d"
  "CMakeFiles/ipds_analysis.dir/pointsto.cc.o"
  "CMakeFiles/ipds_analysis.dir/pointsto.cc.o.d"
  "libipds_analysis.a"
  "libipds_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipds_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
