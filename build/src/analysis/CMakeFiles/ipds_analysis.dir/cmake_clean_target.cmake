file(REMOVE_RECURSE
  "libipds_analysis.a"
)
