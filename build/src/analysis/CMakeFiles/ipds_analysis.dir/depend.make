# Empty dependencies file for ipds_analysis.
# This may be replaced when dependencies are built.
