
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/constfold.cc" "src/analysis/CMakeFiles/ipds_analysis.dir/constfold.cc.o" "gcc" "src/analysis/CMakeFiles/ipds_analysis.dir/constfold.cc.o.d"
  "/root/repo/src/analysis/defmap.cc" "src/analysis/CMakeFiles/ipds_analysis.dir/defmap.cc.o" "gcc" "src/analysis/CMakeFiles/ipds_analysis.dir/defmap.cc.o.d"
  "/root/repo/src/analysis/dominators.cc" "src/analysis/CMakeFiles/ipds_analysis.dir/dominators.cc.o" "gcc" "src/analysis/CMakeFiles/ipds_analysis.dir/dominators.cc.o.d"
  "/root/repo/src/analysis/effects.cc" "src/analysis/CMakeFiles/ipds_analysis.dir/effects.cc.o" "gcc" "src/analysis/CMakeFiles/ipds_analysis.dir/effects.cc.o.d"
  "/root/repo/src/analysis/memconst.cc" "src/analysis/CMakeFiles/ipds_analysis.dir/memconst.cc.o" "gcc" "src/analysis/CMakeFiles/ipds_analysis.dir/memconst.cc.o.d"
  "/root/repo/src/analysis/memloc.cc" "src/analysis/CMakeFiles/ipds_analysis.dir/memloc.cc.o" "gcc" "src/analysis/CMakeFiles/ipds_analysis.dir/memloc.cc.o.d"
  "/root/repo/src/analysis/pointsto.cc" "src/analysis/CMakeFiles/ipds_analysis.dir/pointsto.cc.o" "gcc" "src/analysis/CMakeFiles/ipds_analysis.dir/pointsto.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/ipds_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ipds_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
