file(REMOVE_RECURSE
  "CMakeFiles/ipds_opt.dir/passes.cc.o"
  "CMakeFiles/ipds_opt.dir/passes.cc.o.d"
  "libipds_opt.a"
  "libipds_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipds_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
