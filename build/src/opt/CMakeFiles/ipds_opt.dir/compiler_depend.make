# Empty compiler generated dependencies file for ipds_opt.
# This may be replaced when dependencies are built.
