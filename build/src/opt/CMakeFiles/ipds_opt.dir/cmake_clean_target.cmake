file(REMOVE_RECURSE
  "libipds_opt.a"
)
