file(REMOVE_RECURSE
  "libipds_support.a"
)
