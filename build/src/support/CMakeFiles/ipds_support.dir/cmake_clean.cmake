file(REMOVE_RECURSE
  "CMakeFiles/ipds_support.dir/bitstream.cc.o"
  "CMakeFiles/ipds_support.dir/bitstream.cc.o.d"
  "CMakeFiles/ipds_support.dir/bitvec.cc.o"
  "CMakeFiles/ipds_support.dir/bitvec.cc.o.d"
  "CMakeFiles/ipds_support.dir/diag.cc.o"
  "CMakeFiles/ipds_support.dir/diag.cc.o.d"
  "CMakeFiles/ipds_support.dir/rng.cc.o"
  "CMakeFiles/ipds_support.dir/rng.cc.o.d"
  "libipds_support.a"
  "libipds_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipds_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
