# Empty compiler generated dependencies file for ipds_support.
# This may be replaced when dependencies are built.
