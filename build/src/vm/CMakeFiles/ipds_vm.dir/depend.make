# Empty dependencies file for ipds_vm.
# This may be replaced when dependencies are built.
