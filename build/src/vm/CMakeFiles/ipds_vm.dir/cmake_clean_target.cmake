file(REMOVE_RECURSE
  "libipds_vm.a"
)
