file(REMOVE_RECURSE
  "CMakeFiles/ipds_vm.dir/memory.cc.o"
  "CMakeFiles/ipds_vm.dir/memory.cc.o.d"
  "CMakeFiles/ipds_vm.dir/vm.cc.o"
  "CMakeFiles/ipds_vm.dir/vm.cc.o.d"
  "libipds_vm.a"
  "libipds_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipds_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
