# Empty dependencies file for ipds_baseline.
# This may be replaced when dependencies are built.
