file(REMOVE_RECURSE
  "CMakeFiles/ipds_baseline.dir/stide.cc.o"
  "CMakeFiles/ipds_baseline.dir/stide.cc.o.d"
  "libipds_baseline.a"
  "libipds_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipds_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
