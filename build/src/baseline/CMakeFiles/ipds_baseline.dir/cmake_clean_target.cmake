file(REMOVE_RECURSE
  "libipds_baseline.a"
)
