# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_privilege_escalation "/root/repo/build/examples/privilege_escalation")
set_tests_properties(example_privilege_escalation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_server_monitor "/root/repo/build/examples/server_monitor" "httpd" "20")
set_tests_properties(example_server_monitor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_correlation_explorer "/root/repo/build/examples/correlation_explorer" "sendmail")
set_tests_properties(example_correlation_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_run_protected "/root/repo/build/examples/run_protected" "httpd" "--attack" "authed=1" "--at" "4")
set_tests_properties(example_run_protected PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
