file(REMOVE_RECURSE
  "CMakeFiles/correlation_explorer.dir/correlation_explorer.cpp.o"
  "CMakeFiles/correlation_explorer.dir/correlation_explorer.cpp.o.d"
  "correlation_explorer"
  "correlation_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/correlation_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
