# Empty compiler generated dependencies file for correlation_explorer.
# This may be replaced when dependencies are built.
