# Empty dependencies file for server_monitor.
# This may be replaced when dependencies are built.
