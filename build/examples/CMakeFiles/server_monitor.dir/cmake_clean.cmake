file(REMOVE_RECURSE
  "CMakeFiles/server_monitor.dir/server_monitor.cpp.o"
  "CMakeFiles/server_monitor.dir/server_monitor.cpp.o.d"
  "server_monitor"
  "server_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
