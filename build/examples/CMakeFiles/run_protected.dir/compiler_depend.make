# Empty compiler generated dependencies file for run_protected.
# This may be replaced when dependencies are built.
