file(REMOVE_RECURSE
  "CMakeFiles/run_protected.dir/run_protected.cpp.o"
  "CMakeFiles/run_protected.dir/run_protected.cpp.o.d"
  "run_protected"
  "run_protected.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_protected.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
