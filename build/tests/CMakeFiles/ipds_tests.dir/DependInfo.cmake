
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis.cc" "tests/CMakeFiles/ipds_tests.dir/test_analysis.cc.o" "gcc" "tests/CMakeFiles/ipds_tests.dir/test_analysis.cc.o.d"
  "/root/repo/tests/test_batbuild.cc" "tests/CMakeFiles/ipds_tests.dir/test_batbuild.cc.o" "gcc" "tests/CMakeFiles/ipds_tests.dir/test_batbuild.cc.o.d"
  "/root/repo/tests/test_campaign.cc" "tests/CMakeFiles/ipds_tests.dir/test_campaign.cc.o" "gcc" "tests/CMakeFiles/ipds_tests.dir/test_campaign.cc.o.d"
  "/root/repo/tests/test_correlation.cc" "tests/CMakeFiles/ipds_tests.dir/test_correlation.cc.o" "gcc" "tests/CMakeFiles/ipds_tests.dir/test_correlation.cc.o.d"
  "/root/repo/tests/test_detector.cc" "tests/CMakeFiles/ipds_tests.dir/test_detector.cc.o" "gcc" "tests/CMakeFiles/ipds_tests.dir/test_detector.cc.o.d"
  "/root/repo/tests/test_e2e.cc" "tests/CMakeFiles/ipds_tests.dir/test_e2e.cc.o" "gcc" "tests/CMakeFiles/ipds_tests.dir/test_e2e.cc.o.d"
  "/root/repo/tests/test_frontend.cc" "tests/CMakeFiles/ipds_tests.dir/test_frontend.cc.o" "gcc" "tests/CMakeFiles/ipds_tests.dir/test_frontend.cc.o.d"
  "/root/repo/tests/test_fuzz.cc" "tests/CMakeFiles/ipds_tests.dir/test_fuzz.cc.o" "gcc" "tests/CMakeFiles/ipds_tests.dir/test_fuzz.cc.o.d"
  "/root/repo/tests/test_image.cc" "tests/CMakeFiles/ipds_tests.dir/test_image.cc.o" "gcc" "tests/CMakeFiles/ipds_tests.dir/test_image.cc.o.d"
  "/root/repo/tests/test_interval.cc" "tests/CMakeFiles/ipds_tests.dir/test_interval.cc.o" "gcc" "tests/CMakeFiles/ipds_tests.dir/test_interval.cc.o.d"
  "/root/repo/tests/test_ir.cc" "tests/CMakeFiles/ipds_tests.dir/test_ir.cc.o" "gcc" "tests/CMakeFiles/ipds_tests.dir/test_ir.cc.o.d"
  "/root/repo/tests/test_opt.cc" "tests/CMakeFiles/ipds_tests.dir/test_opt.cc.o" "gcc" "tests/CMakeFiles/ipds_tests.dir/test_opt.cc.o.d"
  "/root/repo/tests/test_overflow.cc" "tests/CMakeFiles/ipds_tests.dir/test_overflow.cc.o" "gcc" "tests/CMakeFiles/ipds_tests.dir/test_overflow.cc.o.d"
  "/root/repo/tests/test_stide.cc" "tests/CMakeFiles/ipds_tests.dir/test_stide.cc.o" "gcc" "tests/CMakeFiles/ipds_tests.dir/test_stide.cc.o.d"
  "/root/repo/tests/test_support.cc" "tests/CMakeFiles/ipds_tests.dir/test_support.cc.o" "gcc" "tests/CMakeFiles/ipds_tests.dir/test_support.cc.o.d"
  "/root/repo/tests/test_tables.cc" "tests/CMakeFiles/ipds_tests.dir/test_tables.cc.o" "gcc" "tests/CMakeFiles/ipds_tests.dir/test_tables.cc.o.d"
  "/root/repo/tests/test_targeted.cc" "tests/CMakeFiles/ipds_tests.dir/test_targeted.cc.o" "gcc" "tests/CMakeFiles/ipds_tests.dir/test_targeted.cc.o.d"
  "/root/repo/tests/test_timing.cc" "tests/CMakeFiles/ipds_tests.dir/test_timing.cc.o" "gcc" "tests/CMakeFiles/ipds_tests.dir/test_timing.cc.o.d"
  "/root/repo/tests/test_vm.cc" "tests/CMakeFiles/ipds_tests.dir/test_vm.cc.o" "gcc" "tests/CMakeFiles/ipds_tests.dir/test_vm.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/ipds_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/ipds_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attack/CMakeFiles/ipds_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ipds_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/ipds_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/ipds_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ipds_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/ipds/CMakeFiles/ipds_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ipds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/ipds_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/ipds_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ipds_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ipds_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ipds_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
