# Empty dependencies file for ipds_tests.
# This may be replaced when dependencies are built.
